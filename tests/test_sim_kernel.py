"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.sim.kernel import HeapSimulator, SimulationError, Simulator

#: Both scheduler implementations must honor the same (cycle, seq) contract;
#: the edge-case tests below run against each.
KERNELS = [Simulator, HeapSimulator]


def test_initial_state():
    sim = Simulator()
    assert sim.cycle == 0
    assert sim.pending_events == 0
    assert sim.events_processed == 0


def test_schedule_and_run_executes_callback():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(sim.cycle), delay=5)
    sim.run(10)
    assert fired == [5]
    assert sim.cycle == 10


def test_run_returns_number_of_events():
    sim = Simulator()
    for delay in range(3):
        sim.schedule(lambda: None, delay=delay)
    assert sim.run(5) == 3


def test_events_beyond_horizon_stay_queued():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append("late"), delay=100)
    sim.run(10)
    assert fired == []
    assert sim.pending_events == 1
    sim.run(100)
    assert fired == ["late"]


def test_same_cycle_events_run_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(lambda: order.append("a"), delay=2)
    sim.schedule(lambda: order.append("b"), delay=2)
    sim.schedule(lambda: order.append("c"), delay=2)
    sim.run(5)
    assert order == ["a", "b", "c"]


def test_event_can_schedule_followup_in_same_run():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.cycle))
        sim.schedule(lambda: seen.append(("second", sim.cycle)), delay=3)

    sim.schedule(first, delay=1)
    sim.run(10)
    assert seen == [("first", 1), ("second", 4)]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(lambda: None, delay=-1)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.run(10)
    with pytest.raises(SimulationError):
        sim.schedule_at(lambda: None, cycle=5)


def test_clock_advances_to_horizon_even_without_events():
    sim = Simulator()
    sim.run(42)
    assert sim.cycle == 42


def test_run_until_absolute_cycle():
    sim = Simulator()
    fired = []
    sim.schedule_at(lambda: fired.append(sim.cycle), 7)
    sim.run_until(7)
    assert fired == [7]
    assert sim.cycle == 7


def test_run_to_completion_drains_queue():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(lambda: chain(n + 1), delay=10)

    sim.schedule(lambda: chain(0), delay=0)
    sim.run_to_completion()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.pending_events == 0


def test_run_to_completion_respects_max_cycles():
    sim = Simulator()
    fired = []
    sim.schedule(lambda: fired.append(1), delay=5)
    sim.schedule(lambda: fired.append(2), delay=500)
    sim.run_to_completion(max_cycles=100)
    assert fired == [1]
    assert sim.pending_events == 1


def test_run_to_completion_with_limit_advances_clock_to_limit():
    """Regression: bounded run_to_completion left the clock at the last event.

    ``run_until`` always advances the clock to the horizon; the bounded
    form must do the same so back-to-back calls observe a consistent clock
    (a second ``run_to_completion(max_cycles=N)`` call previously re-spanned
    part of the first call's window).
    """
    sim = Simulator()
    sim.schedule(lambda: None, delay=5)
    sim.schedule(lambda: None, delay=500)
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 100
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 200
    assert sim.pending_events == 1  # the cycle-500 event is still out there


def test_run_to_completion_with_limit_advances_clock_when_queue_drains():
    sim = Simulator()
    sim.schedule(lambda: None, delay=5)
    sim.run_to_completion(max_cycles=100)
    assert sim.cycle == 100


def test_run_to_completion_without_limit_rests_at_last_event():
    sim = Simulator()
    sim.schedule(lambda: None, delay=7)
    sim.run_to_completion()
    assert sim.cycle == 7


def test_schedule_call_passes_arguments():
    sim = Simulator()
    seen = []
    sim.schedule_call(lambda a, b: seen.append((a, b, sim.cycle)), ("x", 2), delay=4)
    sim.run(10)
    assert seen == [("x", 2, 4)]


def test_schedule_call_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_call(lambda: None, (), delay=-1)


def test_schedule_delivery_invokes_receive_packet():
    sim = Simulator()

    class Sink:
        def __init__(self):
            self.received = []

        def receive_packet(self, packet, in_port, vc_index):
            self.received.append((packet, in_port, vc_index, sim.cycle))

    sink = Sink()
    sim.schedule_delivery(sink, "pkt", 2, 1, delay=3)
    sim.run(5)
    assert sink.received == [("pkt", 2, 1, 3)]


def test_schedule_delivery_rejects_negative_delay():
    sim = Simulator()

    class Sink:
        def receive_packet(self, packet, in_port, vc_index):
            pass

    with pytest.raises(SimulationError):
        sim.schedule_delivery(Sink(), "pkt", 0, 0, delay=-2)


def test_mixed_event_kinds_preserve_schedule_order():
    sim = Simulator()
    order = []

    class Sink:
        def receive_packet(self, packet, in_port, vc_index):
            order.append("delivery")

    sim.schedule(lambda: order.append("plain"), delay=2)
    sim.schedule_delivery(Sink(), None, 0, 0, delay=2)
    sim.schedule_call(lambda tag: order.append(tag), ("call",), delay=2)
    sim.run(5)
    assert order == ["plain", "delivery", "call"]


def test_derived_rng_is_deterministic():
    sim_a = Simulator(seed=11)
    sim_b = Simulator(seed=11)
    assert sim_a.derived_rng(3).random() == sim_b.derived_rng(3).random()
    assert sim_a.derived_rng(3).random() != sim_a.derived_rng(4).random()


def test_events_processed_accumulates():
    sim = Simulator()
    for delay in (1, 2, 3):
        sim.schedule(lambda: None, delay=delay)
    sim.run(2)
    assert sim.events_processed == 2
    sim.run(2)
    assert sim.events_processed == 3


# ---------------------------------------------------------------------- #
# Edge cases the calendar queue must honor (run against both kernels)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_same_cycle_fifo_across_all_schedule_kinds(kernel_cls):
    """Interleaved schedule/schedule_call/schedule_delivery keep seq order."""
    sim = kernel_cls()
    order = []

    class Sink:
        def receive_packet(self, packet, in_port, vc_index):
            order.append(packet)

    sim.schedule_call(lambda tag: order.append(tag), ("call-1",), delay=3)
    sim.schedule(lambda: order.append("plain-1"), delay=3)
    sim.schedule_delivery(Sink(), "delivery-1", 0, 0, delay=3)
    sim.schedule_call(lambda tag: order.append(tag), ("call-2",), delay=3)
    sim.schedule_delivery(Sink(), "delivery-2", 0, 0, delay=3)
    sim.schedule(lambda: order.append("plain-2"), delay=3)
    sim.run(5)
    assert order == [
        "call-1", "plain-1", "delivery-1", "call-2", "delivery-2", "plain-2"
    ]


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_event_at_exactly_end_cycle_runs(kernel_cls):
    sim = kernel_cls()
    fired = []
    sim.schedule_at(lambda: fired.append(sim.cycle), 10)
    sim.run_until(10)
    assert fired == [10]
    assert sim.cycle == 10


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_event_one_past_end_cycle_stays_queued(kernel_cls):
    sim = kernel_cls()
    fired = []
    sim.schedule_at(lambda: fired.append(sim.cycle), 11)
    sim.run_until(10)
    assert fired == []
    assert sim.pending_events == 1
    sim.run_until(11)
    assert fired == [11]


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_reentrant_run_rejected(kernel_cls):
    sim = kernel_cls()
    errors = []

    def reenter():
        try:
            sim.run(1)
        except SimulationError:
            errors.append("run")
        try:
            sim.run_to_completion()
        except SimulationError:
            errors.append("run_to_completion")

    sim.schedule(reenter, delay=1)
    sim.run(2)
    assert errors == ["run", "run_to_completion"]
    # The failed re-entry must not wedge the kernel.
    sim.schedule(lambda: errors.append("after"), delay=1)
    sim.run(2)
    assert errors[-1] == "after"


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_far_future_event_crosses_bucket_horizon(kernel_cls):
    """An overflow event must merge back in ahead of later-scheduled peers."""
    sim = kernel_cls(horizon=8)
    order = []
    # Scheduled far beyond the 8-cycle window: lands in the overflow heap
    # (calendar) or simply deep in the heap (reference kernel).
    sim.schedule_at(lambda: order.append("early-seq"), 100)
    sim.schedule_at(lambda: order.append("waypoint"), 50)

    def late_same_cycle():
        # By now cycle 100 is inside the window; this entry goes straight to
        # the ring bucket that the overflow event must already occupy.
        sim.schedule_at(lambda: order.append("late-seq"), 100)

    sim.schedule_at(late_same_cycle, 99)
    sim.run_until(200)
    assert order == ["waypoint", "early-seq", "late-seq"]
    assert sim.cycle == 200


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_overflow_chain_across_many_windows(kernel_cls):
    sim = kernel_cls(horizon=4)
    fired = []

    def hop(n):
        fired.append(sim.cycle)
        if n:
            sim.schedule(lambda: hop(n - 1), delay=13)

    sim.schedule(lambda: hop(5), delay=13)
    sim.run_to_completion()
    assert fired == [13 * (i + 1) for i in range(6)]


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_bounded_run_to_completion_event_at_exact_limit(kernel_cls):
    sim = kernel_cls()
    fired = []
    sim.schedule(lambda: fired.append(sim.cycle), delay=100)
    sim.run_to_completion(max_cycles=100)
    assert fired == [100]
    assert sim.cycle == 100


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_events_processed_counts_event_that_raises(kernel_cls):
    """Regression: a raising callback must still be counted as processed."""
    sim = kernel_cls()
    ran = []
    sim.schedule(lambda: ran.append("ok"), delay=1)

    def boom():
        raise RuntimeError("boom")

    sim.schedule(boom, delay=1)
    sim.schedule(lambda: ran.append("never"), delay=1)
    with pytest.raises(RuntimeError):
        sim.run(5)
    # Both the successful event and the raising one began executing.
    assert sim.events_processed == 2
    assert ran == ["ok"]
    # The kernel is not wedged and the remaining event is still queued.
    assert sim.pending_events == 1
    sim.run(5)
    assert ran == ["ok", "never"]
    assert sim.events_processed == 3


@pytest.mark.parametrize("kernel_cls", KERNELS)
def test_next_event_cycle_reports_earliest(kernel_cls):
    sim = kernel_cls(horizon=8)
    assert sim.next_event_cycle is None
    sim.schedule_at(lambda: None, 300)  # overflow on the calendar kernel
    assert sim.next_event_cycle == 300
    sim.schedule_at(lambda: None, 5)
    assert sim.next_event_cycle == 5
    sim.run_until(5)
    assert sim.next_event_cycle == 300


def test_env_selects_heap_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "heap")
    sim = Simulator(seed=1)
    assert isinstance(sim, HeapSimulator)
    assert sim.kernel == "heap"
    monkeypatch.delenv("REPRO_KERNEL")
    assert Simulator(seed=1).kernel == "calendar"


def test_env_rejects_unknown_kernel(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "hep")
    with pytest.raises(ValueError, match="REPRO_KERNEL"):
        Simulator(seed=1)
    # Explicit 'calendar' and direct HeapSimulator construction stay valid.
    monkeypatch.setenv("REPRO_KERNEL", "calendar")
    assert Simulator(seed=1).kernel == "calendar"
    monkeypatch.setenv("REPRO_KERNEL", "hep")
    assert HeapSimulator(seed=1).kernel == "heap"


def test_kernels_execute_identical_event_order():
    """Randomized workload: both kernels fire events in the same order."""
    import random

    def drive(sim):
        rng = random.Random(99)
        trace = []

        def evt(tag):
            trace.append((sim.cycle, tag))
            for _ in range(rng.randrange(3)):
                delay = rng.choice((0, 1, 2, 3, 17, 1500))
                sim.schedule_call(evt, (f"{tag}/{delay}",), delay)

        for i in range(20):
            sim.schedule_call(evt, (f"root{i}",), rng.randrange(40))
        sim.run_until(4000)
        return trace, sim.events_processed

    trace_cal, n_cal = drive(Simulator(seed=7, horizon=16))
    trace_heap, n_heap = drive(HeapSimulator(seed=7))
    assert n_cal == n_heap
    assert trace_cal == trace_heap
