"""Unit tests for node-id assignment, placement and address interleaving."""

import pytest

from repro.chip.system_map import NocOutSystemMap, TiledSystemMap, build_system_map
from repro.config.noc import Topology

from tests._fixtures import small_system


class TestTiledSystemMap:
    def setup_method(self):
        self.map = TiledSystemMap(small_system(Topology.MESH, num_cores=16))

    def test_core_and_llc_share_tile_nodes(self):
        assert self.map.core_node(5) == 5
        assert self.map.llc_node(5) == 5
        assert self.map.llc_node_ids == list(range(16))

    def test_mc_nodes_follow_tiles(self):
        assert self.map.mc_node(0) == 16
        assert self.map.mc_node(3) == 19
        assert len(self.map.mc_node_ids) == 4

    def test_home_node_interleaves_blocks_across_tiles(self):
        homes = {self.map.home_node(block * 64) for block in range(16)}
        assert homes == set(range(16))

    def test_mc_for_address_in_range(self):
        for addr in (0x0, 0x1000, 0x2000, 0x100000):
            assert self.map.mc_node_for(addr) in self.map.mc_node_ids

    def test_tile_coordinates(self):
        assert self.map.tile_coord(0) == (0, 0)
        assert self.map.tile_coord(5) == (1, 1)
        assert self.map.tile_coord(15) == (3, 3)

    def test_node_coords_cover_all_nodes(self):
        coords = self.map.node_coords()
        assert set(coords) == set(range(16)) | set(self.map.mc_node_ids)

    def test_one_llc_bank_per_tile(self):
        banks = self.map.llc_bank_configs()
        assert len(banks) == 1
        assert banks[0].size_bytes == 8 * 1024 * 1024 // 16

    def test_active_cores_are_central(self):
        active = self.map.active_core_ids(4)
        assert len(active) == 4
        for core in active:
            col, row = self.map.tile_coord(core)
            assert 1 <= col <= 2 and 1 <= row <= 2

    def test_out_of_range_ids_rejected(self):
        with pytest.raises(ValueError):
            self.map.core_node(16)
        with pytest.raises(ValueError):
            self.map.mc_node(4)


class TestNocOutSystemMap:
    def setup_method(self):
        self.map = NocOutSystemMap(small_system(Topology.NOC_OUT, num_cores=64))

    def test_node_id_ranges_are_disjoint(self):
        cores = set(self.map.core_node_ids)
        llcs = set(self.map.llc_node_ids)
        mcs = set(self.map.mc_node_ids)
        assert not cores & llcs
        assert not llcs & mcs
        assert len(cores) == 64 and len(llcs) == 8 and len(mcs) == 4

    def test_home_node_is_an_llc_tile(self):
        for block in range(64):
            assert self.map.home_node(block * 64) in self.map.llc_node_ids

    def test_blocks_interleave_across_all_banks(self):
        # 16 banks -> 16 consecutive blocks touch each tile exactly twice.
        tiles = [self.map.home_node(block * 64) for block in range(16)]
        assert all(tiles.count(node) == 2 for node in set(tiles))
        assert len(set(tiles)) == 8

    def test_two_banks_per_llc_tile(self):
        banks = self.map.llc_bank_configs()
        assert len(banks) == 2
        assert banks[0].size_bytes == 512 * 1024

    def test_core_positions_form_8_by_8_grid(self):
        positions = self.map.core_positions()
        assert len(positions) == 64
        columns = {pos[0] for pos in positions.values()}
        rows = {pos[1] for pos in positions.values()}
        assert columns == set(range(8))
        assert rows == set(range(8))

    def test_mcs_attach_to_edge_columns(self):
        columns = set(self.map.mc_columns().values())
        assert columns == {0, 7}

    def test_active_cores_are_adjacent_to_llc(self):
        active = self.map.active_core_ids(16)
        assert len(active) == 16
        rows = {self.map.core_position(core)[1] for core in active}
        assert rows <= {3, 4}  # the two rows touching the LLC row

    def test_uneven_core_split_rejected(self):
        with pytest.raises(ValueError):
            NocOutSystemMap(small_system(Topology.NOC_OUT, num_cores=4))


class TestBuildSystemMap:
    def test_factory_selects_layout(self):
        assert isinstance(build_system_map(small_system(Topology.MESH)), TiledSystemMap)
        assert isinstance(
            build_system_map(small_system(Topology.FLATTENED_BUTTERFLY)), TiledSystemMap
        )
        assert isinstance(build_system_map(small_system(Topology.IDEAL)), TiledSystemMap)
        assert isinstance(build_system_map(small_system(Topology.NOC_OUT)), NocOutSystemMap)
