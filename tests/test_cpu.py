"""Unit tests for the core timing model and core node protocol glue."""

import pytest

from repro.cache.coherence import (
    CoherenceRequestType,
    Response,
    ResponseType,
    SnoopRequest,
    SnoopType,
)
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.cpu.core_node import CoreNode
from repro.noc.message import MessageClass
from repro.sim.kernel import Simulator
from repro.workloads.base import FetchBlock, WorkloadStream


class ScriptedStream(WorkloadStream):
    """A workload stream that replays a fixed list of fetch blocks."""

    def __init__(self, blocks):
        self.blocks = list(blocks)
        self.index = 0

    def next_block(self):
        block = self.blocks[self.index % len(self.blocks)]
        self.index += 1
        return block

    def functional_references(self, count):
        return iter(())


HOME = 40


def build_core(blocks, mlp=2):
    sim = Simulator(seed=0)
    sent = []
    workload = WorkloadConfig(name="scripted", mlp=mlp, issue_width=3)
    config = SystemConfig(num_cores=16, seed=0)
    node = CoreNode(
        sim,
        "core0",
        core_id=0,
        node_id=0,
        config=config,
        workload=workload,
        stream=ScriptedStream(blocks),
        send=lambda dst, cls, payload, data: sent.append((dst, cls, payload, data)),
        home_node_for=lambda addr: HOME,
    )
    return sim, node, sent


def data_response(addr, is_instruction=False, exclusive=False):
    return Response(
        ResponseType.DATA,
        addr,
        target_core=0,
        is_instruction=is_instruction,
        grants_exclusive=exclusive,
    )


def requests_of(sent, req_type):
    return [p for _d, _c, p, _dd in sent if getattr(p, "req_type", None) == req_type]


class TestCoreModel:
    def test_ifetch_miss_stalls_until_fill(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=9, data_accesses=[])
        sim, node, sent = build_core([block])
        node.core.start()
        sim.run(20)
        # The core is stalled: one GETS for the instruction line, nothing committed.
        gets = requests_of(sent, CoherenceRequestType.GETS)
        assert len(gets) == 1
        assert gets[0].is_instruction
        assert node.core.instructions_committed.value == 0
        node.handle_response(data_response(0x1000, is_instruction=True))
        sim.run(20)
        assert node.core.instructions_committed.value > 0

    def test_warm_l1i_lets_core_run_without_network(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=9, data_accesses=[])
        sim, node, sent = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(50)
        assert node.core.instructions_committed.value > 50
        assert not sent

    def test_committed_instructions_follow_issue_width(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=9, data_accesses=[])
        sim, node, _ = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(100)
        # 9 instructions per block at 3-wide issue = 3 cycles per block.
        assert node.core.instructions_committed.value == pytest.approx(300, rel=0.1)

    def test_data_miss_overlap_limited_by_mlp(self):
        accesses = [(0x20000 + i * 64, False) for i in range(4)]
        block = FetchBlock(iaddr=0x1000, n_instructions=12, data_accesses=accesses)
        sim, node, sent = build_core([block], mlp=2)
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(5)
        assert node.core.outstanding_data_misses == 2  # capped by MLP
        assert len(requests_of(sent, CoherenceRequestType.GETS)) == 2
        node.handle_response(data_response(0x20000))
        sim.run(1)
        assert len(requests_of(sent, CoherenceRequestType.GETS)) == 3

    def test_block_completes_after_all_fills(self):
        accesses = [(0x20000, False)]
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=accesses)
        sim, node, _ = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(10)
        committed_before = node.core.instructions_committed.value
        node.handle_response(data_response(0x20000))
        sim.run(10)
        assert node.core.instructions_committed.value > committed_before

    def test_inactive_core_does_nothing(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[])
        sim, node, sent = build_core([block])
        sim.run(50)
        assert node.core.instructions_committed.value == 0
        assert not sent


class TestCoreNodeProtocol:
    def test_store_miss_issues_getx(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[(0x30000, True)])
        sim, node, sent = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(5)
        assert len(requests_of(sent, CoherenceRequestType.GETX)) == 1

    def test_mshr_merges_requests_to_same_line(self):
        accesses = [(0x30000, False), (0x30010, False)]
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=accesses)
        sim, node, sent = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(5)
        assert len(requests_of(sent, CoherenceRequestType.GETS)) == 1

    def test_requests_target_home_node(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[])
        sim, node, sent = build_core([block])
        node.core.start()
        sim.run(5)
        assert sent[0][0] == HOME

    def test_snoop_invalidate_acks_and_invalidates(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[])
        sim, node, sent = build_core([block])
        node.warm_data(0x40000, writable=False)
        node.handle_snoop(SnoopRequest(SnoopType.INVALIDATE, 0x40000, home_node=HOME, target_core=0))
        acks = [p for _d, _c, p, _dd in sent if getattr(p, "resp_type", None) == ResponseType.INV_ACK]
        assert len(acks) == 1
        assert not node.l1d.read(0x40000)

    def test_snoop_forward_returns_data_and_downgrades(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[])
        sim, node, sent = build_core([block])
        node.warm_data(0x50000, writable=True)
        node.handle_snoop(SnoopRequest(SnoopType.FORWARD, 0x50000, home_node=HOME, target_core=0))
        fwd = [p for _d, _c, p, _dd in sent if getattr(p, "resp_type", None) == ResponseType.FWD_DATA]
        assert len(fwd) == 1
        hit, needs_upgrade = node.l1d.write(0x50000)
        assert not hit and needs_upgrade  # downgraded to shared

    def test_dirty_victim_generates_writeback(self):
        sim, node, sent = build_core([FetchBlock(iaddr=0x1000, n_instructions=6)])
        l1d_blocks = node.l1d.config.num_blocks
        # Fill one set completely with modified lines, then fill one more.
        num_sets = node.l1d.config.num_sets
        for way in range(node.l1d.config.associativity + 1):
            addr = (way * num_sets) * 64
            node.handle_response(data_response(addr, exclusive=True))
        putm = requests_of(sent, CoherenceRequestType.PUTM)
        assert len(putm) == 1
        assert l1d_blocks > 0

    def test_exclusive_fill_allows_store_hit(self):
        sim, node, _ = build_core([FetchBlock(iaddr=0x1000, n_instructions=6)])
        node.handle_response(data_response(0x60000, exclusive=True))
        hit, _ = node.l1d.write(0x60000)
        assert hit

    def test_reset_statistics_clears_counters(self):
        block = FetchBlock(iaddr=0x1000, n_instructions=6, data_accesses=[])
        sim, node, _ = build_core([block])
        node.warm_instruction(0x1000)
        node.core.start()
        sim.run(20)
        node.reset_statistics()
        assert node.core.instructions_committed.value == 0
        assert node.l1i.accesses == 0
