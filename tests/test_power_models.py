"""Unit tests for the NoC area and energy models (Figures 8, 9 and §6.4)."""

import pytest

from repro.config import presets
from repro.config.noc import Topology
from repro.power.area_model import NocAreaModel, link_width_for_area_budget
from repro.power.cacti import CacheAreaModel
from repro.power.energy_model import NocEnergyModel
from repro.power.orion import BufferAreaModel, CrossbarAreaModel
from repro.power.wire import WireModel


class TestWireModel:
    def test_repeater_area_scales_with_length_and_width(self):
        wire = WireModel()
        base = wire.repeater_area_mm2(1.0, 128)
        assert wire.repeater_area_mm2(2.0, 128) == pytest.approx(2 * base)
        assert wire.repeater_area_mm2(1.0, 256) == pytest.approx(2 * base)

    def test_link_energy_matches_paper_constant(self):
        wire = WireModel()
        assert wire.energy_joules(1, 1.0) == pytest.approx(50e-15)

    def test_repeater_energy_is_19_percent(self):
        wire = WireModel()
        assert wire.repeater_energy_joules(100, 2.0) == pytest.approx(
            0.19 * wire.energy_joules(100, 2.0)
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            WireModel().repeater_area_mm2(-1.0, 128)


class TestRouterAreaModels:
    def test_sram_buffers_are_denser_than_flip_flops(self):
        buffers = BufferAreaModel()
        bits = 10_000
        assert buffers.area_mm2(bits, uses_sram=True) < buffers.area_mm2(bits, uses_sram=False)

    def test_crossbar_area_grows_quadratically_with_ports(self):
        crossbar = CrossbarAreaModel()
        assert crossbar.area_mm2(10, 128) == pytest.approx(4 * crossbar.area_mm2(5, 128))

    def test_cache_area_model_matches_table1(self):
        model = CacheAreaModel()
        assert model.area_mm2(1024 * 1024) == pytest.approx(3.2)
        assert model.power_w(8 * 1024 * 1024) == pytest.approx(4.0)


class TestNocAreaModel:
    def setup_method(self):
        self.model = NocAreaModel()

    def test_figure8_ordering(self):
        mesh = self.model.total_area_mm2(presets.mesh_system())
        fbfly = self.model.total_area_mm2(presets.flattened_butterfly_system())
        nocout = self.model.total_area_mm2(presets.nocout_system())
        assert nocout < mesh < fbfly

    def test_figure8_absolute_values_close_to_paper(self):
        mesh = self.model.total_area_mm2(presets.mesh_system())
        fbfly = self.model.total_area_mm2(presets.flattened_butterfly_system())
        nocout = self.model.total_area_mm2(presets.nocout_system())
        assert mesh == pytest.approx(3.5, rel=0.25)
        assert fbfly == pytest.approx(23.0, rel=0.25)
        assert nocout == pytest.approx(2.5, rel=0.25)

    def test_fbfly_is_roughly_9x_nocout(self):
        fbfly = self.model.total_area_mm2(presets.flattened_butterfly_system())
        nocout = self.model.total_area_mm2(presets.nocout_system())
        assert 6.0 <= fbfly / nocout <= 12.0

    def test_breakdown_components_are_positive(self):
        breakdown = self.model.breakdown(presets.mesh_system())
        assert breakdown.links_mm2 > 0
        assert breakdown.buffers_mm2 > 0
        assert breakdown.crossbars_mm2 > 0
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.links_mm2 + breakdown.buffers_mm2 + breakdown.crossbars_mm2
        )

    def test_area_shrinks_with_link_width(self):
        wide = presets.mesh_system(link_width_bits=128)
        narrow = presets.mesh_system(link_width_bits=32)
        assert self.model.total_area_mm2(narrow) < self.model.total_area_mm2(wide)

    def test_ideal_network_has_no_area(self):
        assert self.model.total_area_mm2(presets.ideal_system()) == 0.0

    def test_link_width_for_area_budget_fits_budget(self):
        nocout_area = self.model.total_area_mm2(presets.nocout_system())
        for system in (presets.mesh_system(), presets.flattened_butterfly_system()):
            width = link_width_for_area_budget(system, nocout_area)
            area = self.model.total_area_mm2(system.with_noc(system.noc.with_link_width(width)))
            assert area <= nocout_area * 1.001
            assert width >= 8

    def test_fbfly_needs_much_narrower_links_than_mesh(self):
        budget = self.model.total_area_mm2(presets.nocout_system())
        mesh_width = link_width_for_area_budget(presets.mesh_system(), budget)
        fbfly_width = link_width_for_area_budget(presets.flattened_butterfly_system(), budget)
        assert fbfly_width < mesh_width
        assert fbfly_width <= 32  # the paper reports roughly a 7x reduction

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            link_width_for_area_budget(presets.mesh_system(), 0.0)


class TestNocEnergyModel:
    def activity(self, scale=1.0):
        return {
            "flits_injected": 1000 * scale,
            "flits_switched": 5000 * scale,
            "buffer_flit_writes": 5000 * scale,
            "crossbar_flit_ports": 25000 * scale,
            "link_flit_mm": 10000.0 * scale,
            "flit_width_bits": 128.0,
        }

    def test_power_scales_with_activity(self):
        model = NocEnergyModel()
        low = model.report(self.activity(1.0), cycles=1000)
        high = model.report(self.activity(2.0), cycles=1000)
        assert high.total_power_w == pytest.approx(2 * low.total_power_w)

    def test_links_dominate_energy(self):
        report = NocEnergyModel().report(self.activity(), cycles=1000)
        assert report.link_energy_j > report.buffer_energy_j
        assert report.link_energy_j > report.crossbar_energy_j

    def test_power_uses_cycle_count(self):
        model = NocEnergyModel()
        short = model.report(self.activity(), cycles=1000)
        long = model.report(self.activity(), cycles=2000)
        assert short.total_power_w == pytest.approx(2 * long.total_power_w)

    def test_zero_cycles_rejected(self):
        with pytest.raises(ValueError):
            NocEnergyModel().report(self.activity(), cycles=0)

    def test_report_dictionary(self):
        report = NocEnergyModel().report(self.activity(), cycles=1000)
        data = report.as_dict()
        assert data["total_power_w"] == pytest.approx(report.total_power_w)
        assert data["link_power_w"] <= data["total_power_w"]
