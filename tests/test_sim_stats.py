"""Unit tests for counters, histograms and stat groups."""

import pytest

from repro.sim.stats import Counter, Histogram, StatError, StatGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_increment(self):
        counter = Counter("c")
        counter.add()
        counter.add()
        assert counter.value == 2

    def test_add_amount(self):
        counter = Counter("c")
        counter.add(2.5)
        assert counter.value == 2.5

    def test_reset(self):
        counter = Counter("c")
        counter.add(10)
        counter.reset()
        assert counter.value == 0

    def test_negative_add_rejected(self):
        counter = Counter("c")
        counter.add(5)
        with pytest.raises(StatError):
            counter.add(-1)
        assert counter.value == 5

    def test_zero_add_allowed(self):
        counter = Counter("c")
        counter.add(0)
        assert counter.value == 0


class TestHistogram:
    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_mean_min_max(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 4):
            hist.add(value)
        assert hist.mean == pytest.approx(2.5)
        assert hist.min == 1
        assert hist.max == 4
        assert hist.count == 4

    def test_percentile(self):
        hist = Histogram("h")
        for value in range(101):
            hist.add(value)
        assert hist.percentile(0) == 0
        assert hist.percentile(50) == pytest.approx(50)
        assert hist.percentile(100) == 100

    def test_percentile_out_of_range_rejected(self):
        hist = Histogram("h")
        hist.add(1)
        with pytest.raises(ValueError):
            hist.percentile(150)

    def test_percentile_of_empty_histogram_raises(self):
        with pytest.raises(StatError):
            Histogram("h").percentile(50)

    def test_percentile_out_of_range_rejected_even_when_empty(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(150)

    def test_keep_samples_false_still_tracks_mean(self):
        hist = Histogram("h", keep_samples=False)
        hist.add(10)
        hist.add(20)
        assert hist.mean == 15

    def test_keep_samples_false_percentile_raises(self):
        hist = Histogram("h", keep_samples=False)
        hist.add(10)
        hist.add(20)
        # Samples were discarded: a percentile here would be fabricated, and
        # the old silent 0.0 made tail-latency reports read as zero.
        with pytest.raises(StatError):
            hist.percentile(99)

    def test_reset(self):
        hist = Histogram("h")
        hist.add(5)
        hist.reset()
        assert hist.count == 0
        assert hist.min is None
        assert hist.mean == 0.0


class TestStatGroup:
    def test_counter_is_memoised(self):
        group = StatGroup("g")
        assert group.counter("x") is group.counter("x")

    def test_histogram_is_memoised(self):
        group = StatGroup("g")
        assert group.histogram("h") is group.histogram("h")

    def test_nested_groups(self):
        group = StatGroup("root")
        child = group.group("child")
        child.counter("x").add(3)
        assert group.to_dict()["child"]["x"] == 3

    def test_reset_recurses(self):
        group = StatGroup("root")
        group.counter("a").add(1)
        group.group("child").counter("b").add(2)
        group.reset()
        assert group.counter("a").value == 0
        assert group.group("child").counter("b").value == 0

    def test_to_dict_includes_histograms(self):
        group = StatGroup("g")
        group.histogram("lat").add(4)
        data = group.to_dict()
        assert data["lat"]["count"] == 1
        assert data["lat"]["mean"] == 4

    def test_to_dict_empty_histogram_has_numeric_extrema(self):
        group = StatGroup("g")
        group.histogram("lat")
        data = group.to_dict()
        assert data["lat"] == {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}

    def test_flat_items(self):
        group = StatGroup("g")
        group.counter("a").add(1)
        group.group("sub").counter("b").add(2)
        flattened = dict(group.flat_items())
        assert flattened["a"] == 1
        assert flattened["sub.b"] == 2
