"""Integration tests for the mesh, flattened butterfly and ideal networks."""

import pytest

from repro.config.noc import Topology
from repro.noc.flattened_butterfly import FlattenedButterflyNetwork
from repro.noc.ideal import IdealNetwork
from repro.noc.mesh import MeshNetwork
from repro.noc.message import Message, MessageClass, control_message_bits, data_message_bits
from repro.sim.kernel import Simulator

from tests._fixtures import small_system


def grid_coords(cols, rows):
    return {row * cols + col: (col, row) for row in range(rows) for col in range(cols)}


def build_network(network_cls, topology, num_cores=16):
    sim = Simulator(seed=1)
    config = small_system(topology, num_cores=num_cores)
    cols, rows = config.mesh_dimensions
    network = network_cls(sim, config, grid_coords(cols, rows))
    received = {}
    for node in network.node_ids:
        network.register_endpoint(node, lambda msg, n=node: received.setdefault(n, []).append(msg))
    return sim, network, received


def send(network, src, dst, msg_class=MessageClass.REQUEST, data=False):
    bits = data_message_bits() if data else control_message_bits()
    message = Message(src=src, dst=dst, msg_class=msg_class, size_bits=bits)
    network.send(message)
    return message


class TestMeshNetwork:
    def test_has_one_router_per_tile(self):
        _sim, network, _ = build_network(MeshNetwork, Topology.MESH)
        assert len(network.routers) == 16

    def test_corner_to_corner_delivery(self):
        sim, network, received = build_network(MeshNetwork, Topology.MESH)
        message = send(network, 0, 15)
        sim.run(100)
        assert received[15] == [message]

    def test_zero_load_latency_matches_three_cycles_per_hop(self):
        sim, network, received = build_network(MeshNetwork, Topology.MESH)
        send(network, 0, 15)  # 3 + 3 = 6 hops in a 4x4 grid
        sim.run(100)
        latency = network.mean_latency(MessageClass.REQUEST)
        # 6 hops * 3 cycles + injection + ejection overheads.
        assert 18 <= latency <= 26

    def test_hop_count_is_manhattan_distance_plus_ejection(self):
        sim, network, _ = build_network(MeshNetwork, Topology.MESH)
        send(network, 0, 3)  # same row, 3 hops away
        sim.run(100)
        assert network.mean_hops() == pytest.approx(4)  # 3 mesh hops + ejection

    def test_local_delivery_bypasses_network(self):
        sim, network, received = build_network(MeshNetwork, Topology.MESH)
        message = send(network, 5, 5)
        sim.run(10)
        assert received[5] == [message]
        assert network.local_deliveries.value == 1
        assert network.mean_hops() == 0

    def test_all_pairs_are_routable(self):
        sim, network, received = build_network(MeshNetwork, Topology.MESH)
        expected = 0
        for src in range(16):
            for dst in range(16):
                if src != dst:
                    send(network, src, dst)
                    expected += 1
        sim.run(500)
        delivered = sum(len(v) for v in received.values())
        assert delivered == expected
        assert network.drained()

    def test_unknown_destination_rejected(self):
        _sim, network, _ = build_network(MeshNetwork, Topology.MESH)
        with pytest.raises(KeyError):
            send(network, 0, 99)

    def test_activity_counters_populate(self):
        sim, network, _ = build_network(MeshNetwork, Topology.MESH)
        send(network, 0, 15, msg_class=MessageClass.RESPONSE, data=True)
        sim.run(100)
        activity = network.activity()
        assert activity["flits_switched"] > 0
        assert activity["link_flit_mm"] > 0


class TestFlattenedButterflyNetwork:
    def test_at_most_two_network_hops(self):
        sim, network, received = build_network(
            FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY
        )
        send(network, 0, 15)
        sim.run(100)
        assert received[15]
        # 2 express hops + 1 ejection hop.
        assert network.mean_hops() <= 3

    def test_single_dimension_needs_one_hop(self):
        sim, network, _ = build_network(FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY)
        send(network, 0, 3)
        sim.run(100)
        assert network.mean_hops() == pytest.approx(2)  # 1 express hop + ejection

    def test_router_radix_is_richer_than_mesh(self):
        _sim, fbfly, _ = build_network(FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY)
        _sim2, mesh, _ = build_network(MeshNetwork, Topology.MESH)
        assert fbfly.routers[0].radix > mesh.routers[0].radix

    def test_long_links_have_higher_latency(self):
        _sim, network, _ = build_network(FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY)
        assert network.link_latency_for_span(1) <= network.link_latency_for_span(7)

    def test_all_pairs_are_routable(self):
        sim, network, received = build_network(
            FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY
        )
        for src in range(0, 16, 3):
            for dst in range(16):
                if src != dst:
                    send(network, src, dst)
        sim.run(500)
        assert network.drained()
        assert sum(len(v) for v in received.values()) == sum(
            1 for src in range(0, 16, 3) for dst in range(16) if src != dst
        )

    def test_faster_than_mesh_corner_to_corner(self):
        sim_m, mesh, _ = build_network(MeshNetwork, Topology.MESH)
        send(mesh, 0, 15)
        sim_m.run(100)
        sim_f, fbfly, _ = build_network(FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY)
        send(fbfly, 0, 15)
        sim_f.run(100)
        assert fbfly.mean_latency() < mesh.mean_latency()


class TestIdealNetwork:
    def test_delivery_without_routers(self):
        sim, network, received = build_network(IdealNetwork, Topology.IDEAL)
        message = send(network, 0, 15)
        sim.run(50)
        assert received[15] == [message]
        assert network.routers == []

    def test_latency_is_wire_delay_only(self):
        sim, network, _ = build_network(IdealNetwork, Topology.IDEAL)
        send(network, 0, 15)
        sim.run(50)
        assert network.mean_latency() <= 6

    def test_faster_than_every_real_topology(self):
        latencies = {}
        for cls, topo in (
            (IdealNetwork, Topology.IDEAL),
            (MeshNetwork, Topology.MESH),
            (FlattenedButterflyNetwork, Topology.FLATTENED_BUTTERFLY),
        ):
            sim, network, _ = build_network(cls, topo)
            send(network, 0, 15, data=True)
            sim.run(100)
            latencies[topo] = network.mean_latency()
        assert latencies[Topology.IDEAL] < latencies[Topology.FLATTENED_BUTTERFLY]
        assert latencies[Topology.FLATTENED_BUTTERFLY] < latencies[Topology.MESH]

    def test_serialization_still_charged(self):
        sim, network, _ = build_network(IdealNetwork, Topology.IDEAL)
        send(network, 0, 1, msg_class=MessageClass.RESPONSE, data=True)
        send(network, 2, 3, msg_class=MessageClass.REQUEST, data=False)
        sim.run(50)
        data_latency = network.mean_latency(MessageClass.RESPONSE)
        control_latency = network.mean_latency(MessageClass.REQUEST)
        assert data_latency > control_latency
