"""Importable helpers shared by the test suite.

These live in a regular module (not ``conftest.py``) so test modules can
import them by their package-qualified name::

    from tests._fixtures import small_system

Importing from ``conftest`` is banned: with several collected directories
each carrying a ``conftest.py``, the bare module name resolves to whichever
directory pytest inserted into ``sys.path`` first (historically
``benchmarks/conftest.py``, which broke collection of four test modules).
"""

from __future__ import annotations

from repro.config.noc import NocConfig, Topology
from repro.config.system import SystemConfig
from repro.config.workload import WorkloadConfig
from repro.experiments.harness import RunSettings

KB = 1024
MB = 1024 * KB

#: Tiny measurement windows for engine/sweep tests that only care about
#: plumbing, not statistical quality.
TINY_SETTINGS = RunSettings(
    warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
)


def small_workload() -> WorkloadConfig:
    """A fast synthetic workload for integration tests."""
    return WorkloadConfig(
        name="TestWorkload",
        instruction_footprint_bytes=256 * KB,
        hot_instruction_fraction=0.5,
        dataset_bytes=8 * MB,
        data_reuse_fraction=0.9,
        shared_fraction=0.02,
        shared_region_bytes=16 * KB,
        write_fraction=0.3,
        loads_per_instruction=0.3,
        mean_block_instructions=12.0,
        jump_probability=0.25,
        issue_width=3,
        mlp=2,
        max_cores=64,
    )


def small_system(topology: Topology, num_cores: int = 16, **noc_kwargs) -> SystemConfig:
    """A 16-core chip configuration suitable for quick end-to-end tests."""
    noc = NocConfig(topology=topology, **noc_kwargs)
    return SystemConfig(num_cores=num_cores, noc=noc, seed=3)
