"""Tests for the parallel, cache-aware experiment engine."""

import json
import os
import pickle
import subprocess
import warnings
import shutil
import sys
from pathlib import Path

import pytest

from repro.chip.chip import SimulationResults
from repro.config import presets
from repro.config.noc import Topology
from repro.experiments import engine
from repro.experiments.engine import (
    CACHE_SCHEMA_VERSION,
    MODEL_VERSION,
    ExperimentPoint,
    ResultCache,
    SweepExecutor,
    resolve_jobs,
    run_experiments,
)
from repro.experiments.harness import RunSettings, point_for
from repro.scenarios import SweepSpec, run_sweep

from tests._fixtures import TINY_SETTINGS

REPO_ROOT = Path(__file__).resolve().parents[1]


def tiny_point(
    topology=Topology.MESH,
    workload_name="Web Search",
    num_cores=16,
    settings=TINY_SETTINGS,
    **kwargs,
) -> ExperimentPoint:
    return point_for(
        topology,
        presets.workload(workload_name),
        num_cores=num_cores,
        settings=settings,
        **kwargs,
    )


class TestExperimentPoint:
    def test_requires_workload(self):
        config = presets.baseline_system(Topology.MESH, num_cores=16)
        with pytest.raises(ValueError):
            ExperimentPoint(config=config, settings=TINY_SETTINGS)

    def test_hash_is_stable_for_equal_points(self):
        assert tiny_point().content_hash() == tiny_point().content_hash()

    def test_hash_payload_covers_model_version(self):
        """Simulator behaviour changes must invalidate cached results.

        The config/settings hash cannot see simulator source edits, so the
        canonical payload carries ``MODEL_VERSION``; bumping it (the policy
        is: in the same commit as any output-changing model edit) turns
        every stale cache entry into a miss.
        """
        payload = tiny_point().canonical_dict()
        assert payload["model"] == MODEL_VERSION
        assert payload["schema"] == CACHE_SCHEMA_VERSION

    def test_hash_changes_with_model_version(self, monkeypatch):
        before = tiny_point().content_hash()
        monkeypatch.setattr("repro.experiments.engine.MODEL_VERSION", MODEL_VERSION + 1)
        assert tiny_point().content_hash() != before

    def test_hash_changes_with_settings(self):
        longer = RunSettings(
            warmup_references=300, detailed_warmup_cycles=200, measure_cycles=700
        )
        assert tiny_point().content_hash() != tiny_point(settings=longer).content_hash()

    def test_hash_changes_with_config(self):
        assert (
            tiny_point().content_hash()
            != tiny_point(topology=Topology.NOC_OUT).content_hash()
        )
        assert (
            tiny_point().content_hash()
            != tiny_point(noc_overrides={"mesh_link_latency": 2}).content_hash()
        )

    def test_hash_is_stable_across_processes(self):
        """SHA-256 over canonical JSON must not depend on the interpreter run."""
        code = (
            "from repro.config import presets\n"
            "from repro.config.noc import Topology\n"
            "from repro.experiments.harness import RunSettings, point_for\n"
            "settings = RunSettings(warmup_references=300, "
            "detailed_warmup_cycles=200, measure_cycles=600)\n"
            "point = point_for(Topology.MESH, presets.workload('Web Search'), "
            "num_cores=16, settings=settings)\n"
            "print(point.content_hash())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout.strip()
        assert output == tiny_point().content_hash()

    def test_point_is_picklable(self):
        point = tiny_point()
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point
        assert clone.content_hash() == point.content_hash()

    def test_describe_mentions_workload_and_topology(self):
        assert "Web Search" in tiny_point().describe()
        assert "mesh" in tiny_point().describe()


class TestSimulationResultsSerialization:
    def test_json_round_trip(self):
        result = run_experiments([tiny_point()])[0]
        restored = SimulationResults.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        # JSON stringifies the int keys; from_dict must restore them.
        assert all(isinstance(core, int) for core in restored.per_core_instructions)

    def test_from_dict_ignores_unknown_keys(self):
        result = run_experiments([tiny_point()])[0]
        data = result.to_dict()
        data["some_future_field"] = 123
        assert SimulationResults.from_dict(data) == result


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = tiny_point()
        assert cache.load(point) is None

        executor = SweepExecutor(jobs=1, cache=cache)
        (result,) = executor.run([point])
        assert executor.last_stats.cache_misses == 1
        assert executor.last_stats.simulations_run == 1

        (again,) = executor.run([point])
        assert again == result
        assert executor.last_stats.cache_hits == 1
        assert executor.last_stats.simulations_run == 0

    def test_cache_invalidated_by_settings_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run([tiny_point()])
        longer = RunSettings(
            warmup_references=300, detailed_warmup_cycles=200, measure_cycles=700
        )
        executor.run([tiny_point(settings=longer)])
        assert executor.last_stats.cache_hits == 0
        assert executor.last_stats.simulations_run == 1

    def test_cache_invalidated_by_config_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        executor.run([tiny_point()])
        executor.run([tiny_point(link_width_bits=64)])
        assert executor.last_stats.cache_hits == 0
        assert executor.last_stats.simulations_run == 1

    def test_corrupted_entry_is_discarded_and_recovered(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = tiny_point()
        executor = SweepExecutor(jobs=1, cache=cache)
        (result,) = executor.run([point])

        path = cache.path_for(point)
        path.write_text("{ this is not json")
        assert cache.load(point) is None
        assert not path.exists()  # corrupt entry deleted, not left to re-fail

        (recovered,) = executor.run([point])
        assert recovered == result
        assert executor.last_stats.simulations_run == 1

    @pytest.mark.parametrize(
        "payload",
        ["null", "[1, 2, 3]", '{"schema": 1, "result": [1, 2]}', '{"schema": 1}'],
    )
    def test_wrong_shaped_json_is_a_miss(self, tmp_path, payload):
        """Valid JSON of the wrong shape must read as a miss, not crash."""
        cache = ResultCache(tmp_path)
        point = tiny_point()
        path = cache.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload)
        assert cache.load(point) is None
        assert not path.exists()

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        point = tiny_point()
        SweepExecutor(jobs=1, cache=cache).run([point])
        path = cache.path_for(point)
        payload = json.loads(path.read_text())
        payload["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load(point) is None

    def test_cache_dir_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
        assert ResultCache().root == tmp_path / "custom"

    def test_cache_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert SweepExecutor(jobs=1).cache is None

    def test_truncated_entry_is_quarantined_with_one_warning(
        self, tmp_path, monkeypatch
    ):
        """A torn write reads as a miss, is kept as *.corrupt, warns once."""
        from repro.experiments import engine

        monkeypatch.setattr(engine, "_corruption_warned", False)
        cache = ResultCache(tmp_path)
        point = tiny_point()
        executor = SweepExecutor(jobs=1, cache=cache)
        (result,) = executor.run([point])

        path = cache.path_for(point)
        intact = path.read_text()
        path.write_text(intact[: len(intact) // 2])  # writer died mid-flush
        with pytest.warns(engine.CacheCorruptionWarning):
            assert cache.load(point) is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()  # damaged bytes survive for diagnosis

        (recovered,) = executor.run([point])
        assert recovered == result
        assert executor.last_stats.simulations_run == 1

        # Further corruption is quarantined silently: one warning per process.
        path.write_text("{ torn again")
        with warnings.catch_warnings():
            warnings.simplefilter("error", engine.CacheCorruptionWarning)
            assert cache.load(point) is None
        assert not path.exists()

    def test_quarantined_entries_never_answer_lookups_again(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import engine

        monkeypatch.setattr(engine, "_corruption_warned", True)
        cache = ResultCache(tmp_path)
        point = tiny_point()
        SweepExecutor(jobs=1, cache=cache).run([point])
        cache.path_for(point).write_text("not json at all")
        assert cache.load(point) is None
        assert cache.load(point) is None  # the .corrupt file is not re-read


class TestCacheEvictionRaces:
    """``REPRO_CACHE_MAX_MB`` eviction with concurrent writers in the mix."""

    def _fill(self, root, count):
        root.mkdir(parents=True, exist_ok=True)
        for index in range(count):
            (root / (f"{index:064x}" + ".json")).write_text("x" * 200)

    def test_eviction_tolerates_entry_vanishing_before_stat(
        self, tmp_path, monkeypatch
    ):
        """A sibling evicts an entry between the glob and our stat: skip it."""
        self._fill(tmp_path, 4)
        cache = ResultCache(tmp_path, max_bytes=1)
        point = tiny_point()

        real_stat = Path.stat
        raced = []

        def racing_stat(self, **kwargs):
            if self.name.startswith("0" * 10) and not raced:
                raced.append(self.name)
                os.remove(self)  # the sibling wins the race...
            return real_stat(self, **kwargs)  # ...so we see FileNotFoundError

        monkeypatch.setattr(Path, "stat", racing_stat)
        SweepExecutor(jobs=1, cache=cache).run([point])
        assert raced  # the race actually happened
        assert cache.path_for(point).exists()  # newest entry is protected
        assert list(tmp_path.glob("*.json")) == [cache.path_for(point)]

    def test_eviction_tolerates_entry_vanishing_before_unlink(
        self, tmp_path, monkeypatch
    ):
        """A sibling deletes an entry we chose to evict: its bytes still count
        as freed, so eviction stops at the cap instead of over-evicting."""
        self._fill(tmp_path, 4)
        cache = ResultCache(tmp_path, max_bytes=1)
        point = tiny_point()

        real_unlink = Path.unlink
        raced = []

        def racing_unlink(self, *args, **kwargs):
            if not raced and self.suffix == ".json":
                raced.append(self.name)
                real_unlink(self)
                raise FileNotFoundError(str(self))
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", racing_unlink)
        SweepExecutor(jobs=1, cache=cache).run([point])
        assert raced
        assert cache.path_for(point).exists()
        assert list(tmp_path.glob("*.json")) == [cache.path_for(point)]

    def test_eviction_survives_cache_directory_removal(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_bytes=1)
        point = tiny_point()
        SweepExecutor(jobs=1, cache=cache).run([point])
        shutil.rmtree(tmp_path / "cache")
        cache._enforce_size_cap()  # a bare rescan of a vanished dir: no crash


class TestSweepExecutor:
    def test_jobs_resolution(self, monkeypatch):
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ValueError):
            resolve_jobs()
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_duplicate_points_simulated_once(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        first, second = executor.run([tiny_point(), tiny_point()])
        assert first == second
        assert executor.last_stats.simulations_run == 1

    def test_results_keep_point_order(self, tmp_path):
        points = [
            tiny_point(topology=Topology.MESH),
            tiny_point(topology=Topology.NOC_OUT),
            tiny_point(topology=Topology.IDEAL),
        ]
        results = SweepExecutor(jobs=1, cache=ResultCache(tmp_path)).run(points)
        assert [r.topology for r in results] == ["mesh", "noc_out", "ideal"]

    def test_parallel_matches_serial(self, tmp_path):
        """Same seed, REPRO_JOBS=1 vs 4 workers: bit-identical results."""
        points = [
            tiny_point(topology=topology, workload_name=name)
            for name in ("Web Search", "Data Serving")
            for topology in (Topology.MESH, Topology.NOC_OUT)
        ]
        serial = SweepExecutor(jobs=1, use_cache=False).run(points)
        parallel = SweepExecutor(jobs=4, use_cache=False).run(points)
        assert serial == parallel

    def test_sweep_rejects_jobs_with_explicit_executor(self, tmp_path):
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        spec = SweepSpec(
            axes={"workload": ("Web Search",), "topology": ("mesh",)},
            settings=TINY_SETTINGS,
            fixed={"num_cores": 16},
        )
        with pytest.raises(ValueError):
            run_sweep(spec, jobs=2, executor=executor)

    def test_second_sweep_served_entirely_from_cache(self, tmp_path):
        """2 workloads x 3 topologies, rerun must run zero new simulations."""
        cache = ResultCache(tmp_path)
        spec = SweepSpec(
            axes={
                "workload": ("Web Search", "Data Serving"),
                "topology": ("mesh", "flattened_butterfly", "noc_out"),
            },
            settings=TINY_SETTINGS,
            fixed={"num_cores": 16},
        )
        points = spec.size()

        executor = SweepExecutor(jobs=4, cache=cache)
        first = run_sweep(spec, executor=executor)
        assert executor.last_stats.simulations_run == points

        executor = SweepExecutor(jobs=4, cache=cache)
        second = run_sweep(spec, executor=executor)
        assert executor.last_stats.simulations_run == 0
        assert executor.last_stats.cache_hits == points
        assert [r.result for r in second] == [r.result for r in first]


class TestPointProfiling:
    """REPRO_PROFILE=1: per-point cProfile output next to the cache entry."""

    def test_profile_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert not engine.profiling_enabled()
        for off in ("0", "off", "false", "no", ""):
            monkeypatch.setenv("REPRO_PROFILE", off)
            assert not engine.profiling_enabled()

    def test_profiled_point_writes_pstats_and_table(self, tmp_path, monkeypatch):
        import pstats

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_PROFILE", "1")
        point = tiny_point()
        result = engine.execute_point(point)
        assert result.total_instructions > 0

        stem = point.content_hash()
        raw = tmp_path / f"{stem}.pstats"
        table = tmp_path / f"{stem}.profile.txt"
        assert raw.exists() and table.exists()
        # The raw dump must load back as a pstats database with real samples.
        stats = pstats.Stats(str(raw))
        assert stats.total_calls > 0
        # The rendered table names the point and shows the top functions by
        # cumulative time (the chip run itself must be among them).
        text = table.read_text()
        assert stem in text
        assert "cumulative" in text
        assert "run_experiment" in text

    def test_profiles_do_not_confuse_the_cache(self, tmp_path, monkeypatch):
        """Profile droppings next to entries must not count as entries."""
        monkeypatch.setenv("REPRO_PROFILE", "1")
        cache = ResultCache(tmp_path)
        point = tiny_point()
        result = engine.execute_point(point)
        assert cache.load(point) is None  # profiling never populates the cache
        cache.store(point, result)
        loaded = cache.load(point)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
