"""Unit tests for the generic virtual-cut-through router."""

import pytest

from repro.noc.buffer import InputPort, unbounded_input_port
from repro.noc.message import Message, MessageClass, Packet
from repro.noc.router import PacketSink, Router
from repro.sim.kernel import Simulator


class SinkRecorder(PacketSink):
    """A downstream endpoint that records arrival cycles."""

    def __init__(self, sim):
        self.sim = sim
        self.input_ports = [unbounded_input_port()]
        self.received = []

    def receive_packet(self, packet, in_port, vc_index):
        self.received.append((packet, self.sim.cycle))


def make_packet(dst=5, flits=1, msg_class=MessageClass.REQUEST):
    return Packet(
        Message(src=0, dst=dst, msg_class=msg_class, size_bits=flits * 128), 128
    )


def make_router(sim, pipeline=2):
    return Router(sim, "r0", pipeline_latency=pipeline)


def inject(router, packet, in_port=0):
    vc_index = router.input_ports[in_port].vc_index_for(packet.msg_class)
    vc = router.input_ports[in_port].vcs[vc_index]
    vc.reserve(packet.num_flits)
    router.receive_packet(packet, in_port, vc_index)


def test_single_hop_latency_is_pipeline_plus_link():
    sim = Simulator()
    router = make_router(sim, pipeline=2)
    sink = SinkRecorder(sim)
    router.add_input_port(InputPort(3, 5))
    out = router.add_output_port("out", sink, 0, link_latency=1)
    router.set_route(5, out)

    inject(router, make_packet())
    sim.run(10)
    assert len(sink.received) == 1
    _packet, arrival = sink.received[0]
    assert arrival == 3  # 2-cycle pipeline + 1-cycle link


def test_packet_hops_are_counted():
    sim = Simulator()
    router = make_router(sim)
    sink = SinkRecorder(sim)
    router.add_input_port(InputPort(3, 5))
    router.set_route(5, router.add_output_port("out", sink, 0, link_latency=1))
    packet = make_packet()
    inject(router, packet)
    sim.run(10)
    assert packet.hops == 1


def test_missing_route_raises():
    sim = Simulator()
    router = make_router(sim)
    sink = SinkRecorder(sim)
    router.add_input_port(InputPort(3, 5))
    router.add_output_port("out", sink, 0, link_latency=1)
    with pytest.raises(KeyError):
        router.route(make_packet(dst=99))


def test_serialization_holds_output_port():
    sim = Simulator()
    router = make_router(sim, pipeline=1)
    sink = SinkRecorder(sim)
    router.add_input_port(InputPort(3, 20))
    out = router.add_output_port("out", sink, 0, link_latency=1)
    router.set_route(5, out)

    first = make_packet(flits=5, msg_class=MessageClass.RESPONSE)
    second = make_packet(flits=5, msg_class=MessageClass.RESPONSE)
    inject(router, first)
    inject(router, second)
    sim.run(30)
    assert len(sink.received) == 2
    arrivals = [cycle for _pkt, cycle in sink.received]
    # The second packet waits for the first packet's 5-flit serialization.
    assert arrivals[1] - arrivals[0] >= 5


class NeverDrainingSink(PacketSink):
    """A downstream port with finite buffering that never frees space."""

    def __init__(self):
        self.input_ports = [InputPort(3, vc_depth_flits=5)]
        self.received = []

    def receive_packet(self, packet, in_port, vc_index):
        self.input_ports[in_port].vcs[vc_index].push(packet)
        self.received.append(packet)


def test_backpressure_blocks_forwarding():
    sim = Simulator()
    router = make_router(sim)
    downstream = NeverDrainingSink()
    router.add_input_port(InputPort(3, 20))
    out = router.add_output_port("out", downstream, 0, link_latency=1)
    router.set_route(5, out)

    for _ in range(3):
        inject(router, make_packet(flits=5, msg_class=MessageClass.RESPONSE))
    sim.run(50)
    # Only the first packet fits into the 5-flit downstream VC.
    assert len(downstream.received) == 1
    assert router.buffered_packets == 2


def test_separate_message_classes_use_separate_vcs():
    sim = Simulator()
    router = make_router(sim)
    sink = SinkRecorder(sim)
    port = InputPort(3, 5)
    router.add_input_port(port)
    router.set_route(5, router.add_output_port("out", sink, 0, link_latency=1))
    request = make_packet(msg_class=MessageClass.REQUEST)
    response = make_packet(msg_class=MessageClass.RESPONSE)
    inject(router, request)
    inject(router, response)
    assert port.vcs[0].occupancy_flits == 1
    assert port.vcs[2].occupancy_flits == 1
    sim.run(10)
    assert len(sink.received) == 2


def test_activity_counters_track_flits():
    sim = Simulator()
    router = make_router(sim)
    sink = SinkRecorder(sim)
    router.add_input_port(InputPort(3, 10))
    router.set_route(5, router.add_output_port("out", sink, 0, link_latency=1, link_length_mm=2.0))
    inject(router, make_packet(flits=5, msg_class=MessageClass.RESPONSE))
    sim.run(10)
    assert router.flits_switched == 5
    assert router.packets_switched == 1
    assert router.buffer_flit_writes == 5
    assert router.output_ports[0].flits_sent == 5


def test_radix_reflects_port_count():
    sim = Simulator()
    router = make_router(sim)
    sink = SinkRecorder(sim)
    for _ in range(3):
        router.add_input_port(InputPort(3, 5))
    router.add_output_port("out", sink, 0, link_latency=1)
    assert router.radix == 3


def test_zero_latency_hop_rejected():
    sim = Simulator()
    router = Router(sim, "r", pipeline_latency=0)
    sink = SinkRecorder(sim)
    with pytest.raises(ValueError):
        router.add_output_port("out", sink, 0, link_latency=0)


def test_invalid_route_port_rejected():
    sim = Simulator()
    router = make_router(sim)
    with pytest.raises(ValueError):
        router.set_route(1, 3)
