"""Unit tests for the Table-1 presets and the six workload presets."""

import pytest

from repro.config import presets
from repro.config.noc import Topology


def test_six_workloads_defined():
    workloads = presets.all_workloads()
    assert sorted(workloads) == sorted(presets.WORKLOAD_NAMES)
    assert len(workloads) == 6


def test_workload_lookup_by_name():
    workload = presets.workload("Data Serving")
    assert workload.name == "Data Serving"


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        presets.workload("HPC Linpack")


def test_instruction_footprints_are_multi_megabyte():
    for workload in presets.all_workloads().values():
        assert workload.instruction_footprint_bytes >= 2 * 1024 * 1024


def test_instruction_footprints_fit_in_llc():
    llc = presets.baseline_system().caches.llc_total_bytes
    for workload in presets.all_workloads().values():
        assert workload.instruction_footprint_bytes <= llc


def test_datasets_dwarf_llc():
    llc = presets.baseline_system().caches.llc_total_bytes
    for workload in presets.all_workloads().values():
        assert workload.dataset_bytes >= 100 * llc


def test_scalability_limits_match_paper():
    assert presets.workload("Web Search").max_cores == 16
    assert presets.workload("Web Frontend").max_cores == 16
    assert presets.workload("Data Serving").max_cores == 64
    assert presets.workload("MapReduce-W").max_cores == 64


def test_data_serving_has_lowest_parallelism():
    data_serving = presets.workload("Data Serving")
    assert data_serving.mlp == 1
    assert data_serving.issue_width <= 2


def test_figure1_workloads_are_subset():
    assert set(presets.FIGURE1_WORKLOADS) <= set(presets.WORKLOAD_NAMES)


def test_system_factories_select_topology():
    assert presets.mesh_system().noc.topology == Topology.MESH
    assert presets.flattened_butterfly_system().noc.topology == Topology.FLATTENED_BUTTERFLY
    assert presets.nocout_system().noc.topology == Topology.NOC_OUT
    assert presets.ideal_system().noc.topology == Topology.IDEAL


def test_baseline_system_matches_table1():
    config = presets.baseline_system()
    assert config.num_cores == 64
    assert config.caches.llc_total_bytes == 8 * 1024 * 1024
    assert config.num_memory_controllers == 4
    assert config.noc.link_width_bits == 128


def test_table1_summary_mentions_key_parameters():
    summary = presets.table1_summary()
    assert "32nm" in summary["Technology"]
    assert "64 cores" in summary["CMP features"]
    assert "5 ports" in summary["Mesh"]
    assert "15 ports" in summary["Flattened Butterfly"]


def test_workload_presets_are_fresh_instances():
    assert presets.workload("Web Search") is not presets.workload("Web Search")
