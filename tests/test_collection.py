"""Smoke test: the whole suite must collect cleanly.

The seed repo shipped four test modules that failed at import time because
``from conftest import small_system`` resolved to ``benchmarks/conftest.py``.
This regression test runs collection in a clean subprocess so any future
import-time breakage (shadowed modules, syntax errors, missing deps) fails
one obvious test instead of silently truncating the suite.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_suite_collects_without_errors():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env=env,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    summary = completed.stdout.strip().splitlines()[-1]
    assert "collected" in summary and "error" not in summary.lower(), summary
