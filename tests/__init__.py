"""Test package.

Being a real package (with this ``__init__.py``) means test modules import
as ``tests.<name>`` and shared helpers import as ``tests._fixtures`` — an
absolute name that a ``conftest.py`` in another collected directory (e.g.
``benchmarks/``) can never shadow.
"""
