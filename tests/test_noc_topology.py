"""Unit tests for topology descriptors and grid geometry."""

import pytest

from repro.config import presets
from repro.config.noc import Topology
from repro.noc.topology import (
    GridGeometry,
    describe_flattened_butterfly,
    describe_mesh,
    describe_topology,
    tiled_grid_geometry,
)


class TestGridGeometry:
    def test_positions_are_tile_centres(self):
        geometry = GridGeometry(4, 4, 2.0)
        assert geometry.position_mm((0, 0)) == (1.0, 1.0)
        assert geometry.position_mm((3, 3)) == (7.0, 7.0)

    def test_manhattan_distance(self):
        geometry = GridGeometry(4, 4, 2.0)
        assert geometry.manhattan_mm((0, 0), (3, 3)) == pytest.approx(12.0)
        assert geometry.manhattan_tiles((0, 0), (3, 3)) == 6

    def test_die_dimensions(self):
        geometry = GridGeometry(8, 8, 1.5)
        assert geometry.die_width_mm == pytest.approx(12.0)
        assert geometry.die_height_mm == pytest.approx(12.0)

    def test_out_of_range_coordinate_rejected(self):
        with pytest.raises(ValueError):
            GridGeometry(2, 2, 1.0).position_mm((5, 0))

    def test_all_coords_covers_grid(self):
        assert len(list(GridGeometry(4, 2, 1.0).all_coords())) == 8

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GridGeometry(0, 4, 1.0)
        with pytest.raises(ValueError):
            GridGeometry(4, 4, -1.0)


class TestMeshDescriptor:
    def test_router_count_and_radix(self):
        descriptor = describe_mesh(presets.mesh_system())
        assert descriptor.num_routers == 64
        assert descriptor.routers[0].ports == 5

    def test_link_count_matches_grid(self):
        descriptor = describe_mesh(presets.mesh_system())
        # 2 directions * (7*8 + 8*7) adjacent pairs.
        assert sum(link.count for link in descriptor.links) == 224

    def test_buffer_bits_match_table1(self):
        descriptor = describe_mesh(presets.mesh_system())
        # 64 routers * 5 ports * 3 VCs * 5 flits * 128 bits.
        assert descriptor.total_buffer_bits == 64 * 5 * 3 * 5 * 128


class TestFlattenedButterflyDescriptor:
    def test_router_radix_matches_paper(self):
        descriptor = describe_flattened_butterfly(presets.flattened_butterfly_system())
        assert descriptor.routers[0].ports == 15

    def test_link_count_is_all_to_all_per_dimension(self):
        descriptor = describe_flattened_butterfly(presets.flattened_butterfly_system())
        # Each row: 8*7 ordered pairs, 8 rows; same for columns.
        assert sum(link.count for link in descriptor.links) == 2 * 8 * 7 * 8

    def test_uses_sram_buffers(self):
        descriptor = describe_flattened_butterfly(presets.flattened_butterfly_system())
        assert descriptor.routers[0].uses_sram_buffers

    def test_total_wire_length_far_exceeds_mesh(self):
        mesh = describe_mesh(presets.mesh_system())
        fbfly = describe_flattened_butterfly(presets.flattened_butterfly_system())
        assert fbfly.total_link_bit_mm > 5 * mesh.total_link_bit_mm


class TestDescribeTopology:
    def test_dispatch_by_topology(self):
        assert describe_topology(presets.mesh_system()).name == "mesh"
        assert (
            describe_topology(presets.flattened_butterfly_system()).name
            == "flattened_butterfly"
        )
        assert describe_topology(presets.nocout_system()).name == "noc_out"

    def test_ideal_topology_has_no_hardware(self):
        descriptor = describe_topology(presets.ideal_system())
        assert descriptor.num_routers == 0
        assert descriptor.total_link_bit_mm == 0

    def test_tiled_geometry_uses_system_tile_width(self):
        config = presets.mesh_system()
        geometry = tiled_grid_geometry(config)
        assert geometry.tile_width_mm == pytest.approx(config.tile_width_mm)
