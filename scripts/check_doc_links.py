#!/usr/bin/env python3
"""CI check: every relative Markdown link in the repo's docs resolves.

Scans the top-level ``*.md`` files plus everything under ``docs/`` and
``reports/`` for inline links (``[text](target)``), skips external
schemes (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#...``), and verifies the target path exists relative to the file
containing the link.  Fragments on relative links (``file.md#section``)
are checked for file existence only.

Exits non-zero listing every broken link.  Run it after
``scripts/make_report.py`` so the generated report's links are covered
too.

Usage::

    python scripts/check_doc_links.py              # default doc set
    python scripts/check_doc_links.py README.md    # explicit files/dirs
"""

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links: [text](target).  Reference-style links are rare
#: in this repo and deliberately out of scope.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link targets that never map to a file in the repo.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def default_documents() -> List[Path]:
    """The documents CI checks: top-level, docs/, and reports/ Markdown."""
    documents = sorted(REPO_ROOT.glob("*.md"))
    for directory in ("docs", "reports"):
        documents.extend(sorted((REPO_ROOT / directory).glob("**/*.md")))
    return documents


def iter_documents(arguments: List[str]) -> List[Path]:
    if not arguments:
        return default_documents()
    documents: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            documents.extend(sorted(path.glob("**/*.md")))
        else:
            documents.append(path)
    return documents


def broken_links(document: Path) -> Iterable[Tuple[int, str]]:
    """Yield ``(line number, target)`` for every unresolvable link."""
    inside_fence = False
    for number, line in enumerate(document.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            inside_fence = not inside_fence
            continue
        if inside_fence:
            continue
        for match in LINK_PATTERN.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (document.parent / relative).exists():
                yield number, target


def main(arguments: List[str]) -> int:
    failures = 0
    documents = iter_documents(arguments)
    for document in documents:
        if not document.exists():
            print(f"missing document: {document}")
            failures += 1
            continue
        try:
            shown = document.relative_to(REPO_ROOT)
        except ValueError:
            shown = document
        for number, target in broken_links(document):
            print(f"{shown}:{number}: broken link -> {target}")
            failures += 1
    checked = len(documents)
    if failures:
        print(f"{failures} broken link(s) across {checked} document(s)")
        return 1
    print(f"all relative links resolve ({checked} document(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
