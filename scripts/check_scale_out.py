#!/usr/bin/env python
"""CI smoke check: the 64-512-core scale-out sweep runs end to end.

Runs :func:`repro.experiments.scale_out.scale_out_spec` for one workload at
the ambient ``REPRO_EXPERIMENT_SCALE`` (CI uses 0.1, the repo's smoke
pattern) across all four fabrics at 64-512 cores (the 1024/2048-core
chiplet points have their own gate, ``scripts/check_chiplet.py``), then
asserts:

* every point simulated and produced committed instructions — in
  particular the 256-core concentrated-mesh point, which exercises the
  plugin-built large-grid path (factorised grids, concentrated system map,
  shared-router mesh construction);
* the sweep's pivot renders through the reporting layer
  (:func:`scale_out_report`), so the report hook cannot silently rot.

Exit code 0 on success; any assertion or simulation error fails the job.
"""

from __future__ import annotations

import sys

#: The smoke grid: every fabric, but only up to 512 cores — large enough
#: to cover each fabric's large-grid construction path, small enough for
#: a CI smoke job.
CORE_COUNTS = (64, 128, 256, 512)
FABRICS = ("mesh", "cmesh", "noc_out", "chiplet")


def main() -> int:
    from repro.experiments.scale_out import run_scale_out, scale_out_report

    workload = "MapReduce-W"
    results = run_scale_out(
        workload_names=(workload,), core_counts=CORE_COUNTS, fabrics=FABRICS
    )
    expected = len(FABRICS) * len(CORE_COUNTS)
    assert len(results) == expected, f"expected {expected} points, got {len(results)}"

    for record in results:
        assert record.metrics["total_instructions"] > 0, (
            f"point {record.coords} committed no instructions"
        )
    cmesh_256 = results.filter(topology="cmesh", num_cores=256)
    assert len(cmesh_256) == 1, "256-core concentrated-mesh point missing"
    print(
        "cmesh @ 256 cores: "
        f"throughput {cmesh_256[0].metrics['throughput_ipc']:.3f} IPC, "
        f"{int(cmesh_256[0].metrics['messages_delivered'])} messages"
    )

    report = scale_out_report(
        workload_names=(workload,), core_counts=CORE_COUNTS, fabrics=FABRICS
    )
    assert "cmesh" in report.measured_table
    assert "chiplet" in report.measured_table
    assert "512 cores" in report.measured_table
    print(report.measured_table)
    print(f"scale-out ordering check: {report.comparison.status}")
    print("scale-out smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
