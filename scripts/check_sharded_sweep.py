#!/usr/bin/env python3
"""CI check: a sharded sweep plus a cache merge reproduces the full sweep.

Exercises the distributed-sweep workflow end to end on one machine:

1. expand the Figure-1 spec and split it with ``spec.shard(i, 2)``;
2. run each shard against its own private cache directory (as two
   machines would);
3. merge both shard caches into a fresh directory with
   :func:`repro.scenarios.merge.merge_caches`;
4. run the *unsharded* spec against the merged cache and require zero new
   simulations and record-for-record equality with the shard union.

Honours ``REPRO_EXPERIMENT_SCALE`` / ``REPRO_JOBS``; CI runs it at scale
0.1.  Violations raise (explicitly, not via ``assert``, so ``python -O``
cannot strip the checks) and exit non-zero.

Usage::

    PYTHONPATH=src REPRO_EXPERIMENT_SCALE=0.1 python scripts/check_sharded_sweep.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.engine import ResultCache, SweepExecutor  # noqa: E402
from repro.experiments.fig1_scaling import figure1_spec  # noqa: E402
from repro.scenarios import run_sweep  # noqa: E402
from repro.scenarios.merge import merge_caches  # noqa: E402

SHARDS = 2


class CheckFailure(Exception):
    """A sharding/merge invariant was violated."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def main() -> int:
    spec = figure1_spec()
    total_points = len(spec.expand())
    print(f"Figure 1 spec: {total_points} points, sharded {SHARDS} ways")

    with tempfile.TemporaryDirectory(prefix="repro-shard-check-") as tmp:
        tmp = Path(tmp)
        shard_records = {}
        shard_sizes = []
        for index in range(SHARDS):
            shard = spec.shard(index, SHARDS)
            executor = SweepExecutor(cache=ResultCache(tmp / f"shard{index}"))
            results = run_sweep(shard, executor=executor, keep_results=False)
            shard_sizes.append(len(results))
            print(
                f"  shard {index}/{SHARDS}: {len(results)} points, "
                f"{executor.last_stats.simulations_run} simulated"
            )
            for record in results:
                check(
                    record.point_hash not in shard_records,
                    f"point {record.point_hash} appeared in two shards",
                )
                shard_records[record.point_hash] = record

        check(
            sum(shard_sizes) == total_points,
            f"shards cover {sum(shard_sizes)} of {total_points} points",
        )

        merged = tmp / "merged"
        for index in range(SHARDS):
            stats = merge_caches(tmp / f"shard{index}", merged)
            print(f"  merge shard{index} -> merged: {stats.summary()}")

        executor = SweepExecutor(cache=ResultCache(merged))
        full = run_sweep(spec, executor=executor, keep_results=False)
        print(
            f"  unsharded run on merged cache: {len(full)} points, "
            f"{executor.last_stats.simulations_run} simulated, "
            f"{executor.last_stats.cache_hits} cache hits"
        )
        check(
            executor.last_stats.simulations_run == 0,
            "merged cache was incomplete: the unsharded sweep re-simulated "
            f"{executor.last_stats.simulations_run} points",
        )
        for record in full:
            check(
                record.metrics == shard_records[record.point_hash].metrics,
                f"metrics for {record.point_hash} differ between the sharded "
                "and merged runs",
            )

    print("OK: sharded run + cache merge reproduces the unsharded sweep")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except CheckFailure as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        raise SystemExit(1)
