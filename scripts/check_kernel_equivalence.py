#!/usr/bin/env python3
"""CI check: the calendar and heap kernels are statistically equivalent.

Runs the seeded congested 8x8 mesh (the ``congested_mesh`` scenario from
``benchmarks/bench_kernel_hotpath.py``) once under each scheduler —
:class:`repro.sim.kernel.Simulator` (calendar queue) and
:class:`repro.sim.kernel.HeapSimulator` (reference binary heap) — and
asserts the runs are indistinguishable:

* identical ``events_processed`` (every kernel event fired on both);
* identical network statistics, compared via the full ``stats.to_dict()``
  tree (messages sent/delivered, per-class latency histograms, hop and
  flit-hop counts);
* identical per-interface injection/delivery counters.

Because both kernels execute the exact same callbacks, any divergence here
means event *order* diverged — which per the ``MODEL_VERSION`` policy in
``docs/experiments.md`` must be traced and version-bumped, never shipped
silently.  The calendar/heap swap itself required no bump precisely
because this check holds.

Exits non-zero with a diff summary on any mismatch.

Usage::

    python scripts/check_kernel_equivalence.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config.noc import NocConfig, Topology  # noqa: E402
from repro.config.system import SystemConfig  # noqa: E402
from repro.noc.mesh import MeshNetwork  # noqa: E402
from repro.sim.kernel import HeapSimulator, Simulator  # noqa: E402
from repro.workloads.traffic import UniformRandomTrafficGenerator  # noqa: E402

#: The congested_mesh scenario: heavy uniform traffic over narrow links,
#: so credit blocking, busy-port wakes and multi-candidate arbitration all
#: exercise heavily.  Must stay in sync with bench_kernel_hotpath.py.
INJECTION_RATE = 0.25
LINK_WIDTH_BITS = 64
CYCLES = 6_000
SIM_SEED = 3
TRAFFIC_SEED = 5


def run_scenario(kernel_cls) -> dict:
    sim = kernel_cls(seed=SIM_SEED)
    noc = NocConfig(topology=Topology.MESH, link_width_bits=LINK_WIDTH_BITS)
    config = SystemConfig(num_cores=64, noc=noc, seed=SIM_SEED)
    coords = {i: (i % 8, i // 8) for i in range(64)}
    network = MeshNetwork(sim, config, coords)
    generator = UniformRandomTrafficGenerator(
        sim, network, list(coords), INJECTION_RATE, seed=TRAFFIC_SEED
    )
    generator.start()
    sim.run(CYCLES)
    interfaces = {
        node: (ni.messages_injected, ni.messages_delivered, ni.flits_injected)
        for node, ni in network.interfaces.items()
    }
    return {
        "kernel": sim.kernel,
        "events_processed": sim.events_processed,
        "network_stats": network.stats.to_dict(),
        "generator_stats": generator.stats.to_dict(),
        "interfaces": interfaces,
    }


def diff_dicts(a: dict, b: dict, prefix: str = "") -> list:
    """Flat list of dotted paths where two nested dicts differ."""
    mismatches = []
    for key in sorted(set(a) | set(b)):
        path = f"{prefix}{key}"
        va, vb = a.get(key), b.get(key)
        if isinstance(va, dict) and isinstance(vb, dict):
            mismatches.extend(diff_dicts(va, vb, prefix=f"{path}."))
        elif va != vb:
            mismatches.append(f"  {path}: calendar={va!r} heap={vb!r}")
    return mismatches


def main() -> int:
    calendar = run_scenario(Simulator)
    heap = run_scenario(HeapSimulator)
    assert calendar["kernel"] == "calendar", "REPRO_KERNEL must be unset here"
    assert heap["kernel"] == "heap"

    problems = []
    if calendar["events_processed"] != heap["events_processed"]:
        problems.append(
            f"  events_processed: calendar={calendar['events_processed']} "
            f"heap={heap['events_processed']}"
        )
    for section in ("network_stats", "generator_stats", "interfaces"):
        problems.extend(diff_dicts(calendar[section], heap[section], f"{section}."))

    name = f"congested 8x8 mesh, {CYCLES} cycles, rate {INJECTION_RATE}"
    if problems:
        print(f"kernel equivalence FAILED on {name}:")
        print("\n".join(problems))
        print(
            "\nEvent order diverged between the calendar and heap kernels; "
            "per docs/experiments.md this must be traced (and MODEL_VERSION "
            "bumped if the new order is intended)."
        )
        return 1
    print(
        f"kernel equivalence OK on {name}: "
        f"{calendar['events_processed']} events, "
        f"{calendar['network_stats']['messages_delivered']:.0f} messages "
        f"delivered, statistics identical under both kernels"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
