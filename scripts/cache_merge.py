#!/usr/bin/env python3
"""Merge a shard's result-cache directory into another cache directory.

Thin wrapper so the tool is discoverable next to the other scripts; the
implementation (and the ``python -m repro.scenarios.merge`` entry point)
lives in :mod:`repro.scenarios.merge`.

Usage::

    PYTHONPATH=src python scripts/cache_merge.py shard0-cache/ merged-cache/
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios.merge import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
