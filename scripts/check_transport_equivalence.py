#!/usr/bin/env python3
"""CI check: the vector and scalar transports are bit-identical.

Runs three scenarios once under each transport (``REPRO_TRANSPORT`` unset
= the scalar reference, then ``vector`` = the batched SoA engine from
``repro.noc.vector``) and asserts the runs are indistinguishable:

* the seeded congested 8x8 mesh (the ``congested_mesh`` scenario shared
  with ``scripts/check_kernel_equivalence.py``), where credit blocking,
  busy-port wakes and multi-candidate arbitration all exercise heavily;
* a 1024-core chiplet network under uniform traffic, covering the
  two-level NoI fabric (boundary routers, interposer hops, IO die);
* a tenanted open-loop chip (split placement, bursty arrivals), covering
  the full chip stack — coherence traffic, tenant overlays and the
  per-tenant tail accounting — end to end.

Compared per scenario: ``events_processed`` (the vector engine must not
add, drop or move kernel events) and the full stats trees.  Any
divergence means the transports computed different forwarding decisions —
which per the ``MODEL_VERSION`` policy in ``docs/experiments.md`` must be
traced and version-bumped, never shipped silently.  The vector transport
ships with NO bump precisely because this check holds.

Exits non-zero with a diff summary on any mismatch; exits 0 with a note
when numpy is unavailable (the vector transport then falls back to scalar
and there is nothing to compare).

Usage::

    python scripts/check_transport_equivalence.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.soa import HAVE_NUMPY  # noqa: E402
from repro.noc.vector import TRANSPORT_ENV_VAR  # noqa: E402


def run_congested_mesh() -> dict:
    import check_kernel_equivalence as cke
    from repro.sim.kernel import Simulator

    return cke.run_scenario(Simulator)


def run_chiplet_1024() -> dict:
    from repro.fabrics import ChipletNetwork, ChipletSystemMap, chiplet_system
    from repro.sim.kernel import Simulator
    from repro.workloads.traffic import UniformRandomTrafficGenerator

    sim = Simulator(seed=3)
    config = chiplet_system(num_cores=1024)
    network = ChipletNetwork(sim, config, ChipletSystemMap(config))
    generator = UniformRandomTrafficGenerator(
        sim, network, list(range(1024)), 0.005, seed=7
    )
    generator.start()
    sim.run(1_500)
    return {
        "events_processed": sim.events_processed,
        "network_stats": network.stats.to_dict(),
        "generator_stats": generator.stats.to_dict(),
    }


def run_tenanted_chip() -> dict:
    from repro.chip.chip import Chip
    from repro.config.noc import NocConfig, Topology
    from repro.config.system import SystemConfig
    from repro.tenancy import build_placement

    wmap = build_placement(
        "split_half",
        16,
        ["Data Serving", "MapReduce-C"],
        arrival="bursty",
        rate=0.08,
    )
    config = SystemConfig(
        num_cores=16, noc=NocConfig(topology=Topology.MESH), seed=3
    ).with_workload_map(wmap)
    results = Chip(config).run_experiment(
        warmup_references=300, detailed_warmup_cycles=200, measure_cycles=600
    )
    return {"results": results.to_dict()}


SCENARIOS = (
    ("congested 8x8 mesh", run_congested_mesh),
    ("1024-core chiplet", run_chiplet_1024),
    ("tenanted open-loop chip", run_tenanted_chip),
)


def main() -> int:
    if not HAVE_NUMPY:
        print(
            "transport equivalence SKIPPED: numpy unavailable, "
            "REPRO_TRANSPORT=vector falls back to scalar"
        )
        return 0

    failures = 0
    for name, scenario in SCENARIOS:
        os.environ.pop(TRANSPORT_ENV_VAR, None)
        scalar = json.dumps(scenario(), sort_keys=True, default=str)
        os.environ[TRANSPORT_ENV_VAR] = "vector"
        vector = json.dumps(scenario(), sort_keys=True, default=str)
        os.environ.pop(TRANSPORT_ENV_VAR, None)
        if scalar == vector:
            print(f"transport equivalence OK on {name}: statistics identical")
        else:
            failures += 1
            print(f"transport equivalence FAILED on {name}:")
            a, b = json.loads(scalar), json.loads(vector)
            for path in _diff_paths(a, b):
                print(path)
    if failures:
        print(
            "\nThe vector transport diverged from the scalar reference; per "
            "docs/experiments.md this must be traced (and MODEL_VERSION "
            "bumped if the new behaviour is intended)."
        )
        return 1
    return 0


def _diff_paths(a, b, prefix: str = "", limit: int = 20) -> list:
    """First ``limit`` dotted paths where two nested structures differ."""
    mismatches: list = []

    def walk(x, y, path):
        if len(mismatches) >= limit:
            return
        if isinstance(x, dict) and isinstance(y, dict):
            for key in sorted(set(x) | set(y)):
                walk(x.get(key), y.get(key), f"{path}.{key}" if path else str(key))
        elif x != y:
            mismatches.append(f"  {path}: scalar={x!r} vector={y!r}")

    walk(a, b, prefix)
    return mismatches


if __name__ == "__main__":
    raise SystemExit(main())
