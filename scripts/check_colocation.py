#!/usr/bin/env python3
"""CI smoke check: the tenancy co-location sweep runs end to end.

Runs the reduced co-location sweep (all three placements, bursty
arrivals, the top default load) on the 64-core mesh at the ambient
``REPRO_EXPERIMENT_SCALE`` (CI uses 0.1, the repo's smoke pattern)
against a throwaway result cache, then requires:

* every point simulated, delivered probe traffic, and produced a
  populated per-tenant latency pivot (p99 present for every tenant that
  owns cores);
* ``split_half`` reports *distinct* per-tenant tails — the
  whole point of the tenancy layer is that the two tenants' latency
  distributions are separable;
* a warm re-run against the same cache performs **zero** re-simulations
  while still reproducing the identical pivot — i.e. the per-tenant
  summaries survive the result round-trip, not just the live run;
* the report hook renders (so it cannot silently rot).

Violations raise (explicitly, not via ``assert``, so ``python -O``
cannot strip the checks) and exit non-zero.

Usage::

    PYTHONPATH=src REPRO_EXPERIMENT_SCALE=0.1 python scripts/check_colocation.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.colocation import (  # noqa: E402
    LOADS,
    PLACEMENTS,
    colocation_pivot,
    colocation_report,
    run_colocation,
)
from repro.experiments.engine import ResultCache, SweepExecutor  # noqa: E402


class CheckFailure(Exception):
    """A co-location invariant was violated."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def run_reduced(cache_dir: Path):
    executor = SweepExecutor(cache=ResultCache(cache_dir))
    results = run_colocation(
        arrivals=("bursty",), loads=(LOADS[-1],), executor=executor
    )
    return results, executor.last_stats


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"

        results, stats = run_reduced(cache_dir)
        check(
            len(results) == len(PLACEMENTS),
            f"expected {len(PLACEMENTS)} points, got {len(results)}",
        )
        check(
            stats.simulations_run == len(PLACEMENTS),
            f"cold run should simulate every point, ran {stats.simulations_run}",
        )

        pivot = colocation_pivot(results)
        for placement in PLACEMENTS:
            check(placement in pivot, f"no per-tenant pivot for {placement!r}")
            for tenant, by_point in pivot[placement].items():
                check(
                    all(p99 > 0 for p99 in by_point.values()),
                    f"{placement}/{tenant} produced no probe latency",
                )

        split = pivot["split_half"]
        check(
            len(split) == 2,
            f"split_half should report two tenants, got {sorted(split)}",
        )
        tails = [next(iter(by_point.values())) for by_point in split.values()]
        check(
            tails[0] != tails[1],
            f"split_half tenants report identical p99 ({tails[0]}); "
            "per-tenant attribution is not separating them",
        )
        for tenant, by_point in split.items():
            print(f"split_half {tenant}: p99 {next(iter(by_point.values())):.1f} cycles")

        warm_results, warm_stats = run_reduced(cache_dir)
        check(
            warm_stats.simulations_run == 0,
            f"warm re-run re-simulated {warm_stats.simulations_run} points",
        )
        check(
            colocation_pivot(warm_results) == pivot,
            "warm per-tenant pivot diverged from the live run",
        )

    report = colocation_report(arrivals=("bursty",), loads=(LOADS[-1],))
    check("split_half" in report.measured_table, "report table lost split_half rows")
    print(report.measured_table)
    print(f"colocation baseline check: {report.comparison.status}")
    print("colocation smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
