#!/usr/bin/env python3
"""CI smoke check: the 1024-core chiplet design point runs end to end.

Runs the headline chiplet point of the scale-out sweep (MapReduce-W on
the 1024-core chiplet/NoI fabric) at the ambient
``REPRO_EXPERIMENT_SCALE`` (CI uses 0.1, the repo's smoke pattern)
against a throwaway result cache, then requires:

* the point simulated (cold run performs exactly one simulation),
  committed instructions and delivered messages across the interposer;
* the fabric's static description feeds the area pivot: the NoC area
  breakdown for the 1024-core chiplet chip reports non-zero link, buffer
  and crossbar area (i.e. ``describe()`` is populated, not a stub);
* a warm re-run against the same cache performs **zero** re-simulations
  while reproducing identical metrics — the chiplet results survive the
  result-store round-trip.

Violations raise (explicitly, not via ``assert``, so ``python -O``
cannot strip the checks) and exit non-zero.

Usage::

    PYTHONPATH=src REPRO_EXPERIMENT_SCALE=0.1 python scripts/check_chiplet.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.engine import ResultCache, SweepExecutor  # noqa: E402
from repro.experiments.scale_out import run_scale_out  # noqa: E402
from repro.fabrics import chiplet_system, describe_chiplet  # noqa: E402
from repro.power.area_model import NocAreaModel  # noqa: E402

NUM_CORES = 1024


class CheckFailure(Exception):
    """A chiplet smoke invariant was violated."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def run_point(cache_dir: Path):
    executor = SweepExecutor(cache=ResultCache(cache_dir))
    results = run_scale_out(
        workload_names=("MapReduce-W",),
        core_counts=(NUM_CORES,),
        fabrics=("chiplet",),
        executor=executor,
    )
    return results, executor.last_stats


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"

        results, stats = run_point(cache_dir)
        check(len(results) == 1, f"expected 1 point, got {len(results)}")
        check(
            stats.simulations_run == 1,
            f"cold run should simulate the point, ran {stats.simulations_run}",
        )
        record = results[0]
        check(
            record.metrics["total_instructions"] > 0,
            "1024-core chiplet point committed no instructions",
        )
        check(
            record.metrics["messages_delivered"] > 0,
            "1024-core chiplet point delivered no messages",
        )
        print(
            f"chiplet @ {NUM_CORES} cores: "
            f"throughput {record.metrics['throughput_ipc']:.3f} IPC, "
            f"{int(record.metrics['messages_delivered'])} messages"
        )

        config = chiplet_system(num_cores=NUM_CORES)
        descriptor = describe_chiplet(config)
        check(
            descriptor.num_routers > NUM_CORES,
            "chiplet descriptor is missing its interposer routers",
        )
        breakdown = NocAreaModel().breakdown(config)
        for component in ("links_mm2", "buffers_mm2", "crossbars_mm2"):
            check(
                breakdown.as_dict()[component] > 0,
                f"chiplet area breakdown reports zero {component}",
            )
        print(f"chiplet @ {NUM_CORES} cores NoC area: {breakdown.total_mm2:.2f} mm2")

        warm_results, warm_stats = run_point(cache_dir)
        check(
            warm_stats.simulations_run == 0,
            f"warm re-run re-simulated {warm_stats.simulations_run} points",
        )
        check(
            warm_results[0].metrics == record.metrics,
            "warm chiplet metrics diverged from the live run",
        )

    print("chiplet smoke check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
