#!/usr/bin/env python3
"""CI check: the README's reproduction-status table matches the report.

The README embeds a snapshot of the fig-by-fig status table from the
committed ``reports/REPRODUCTION.md``.  Nothing regenerates the README
automatically, so after a model change (and report regeneration) the
snapshot would silently drift; this check fails until the README copy is
refreshed with the report's current table.

Run it against the *committed* report — in CI this must happen **before**
``make_report.py`` overwrites the report at smoke scale.

Usage::

    python scripts/check_readme_status.py
"""

import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent


def status_table_lines(report_text: str) -> List[str]:
    """The Markdown table immediately following ``## Status by figure``."""
    lines = report_text.splitlines()
    try:
        start = lines.index("## Status by figure")
    except ValueError:
        raise SystemExit("report has no '## Status by figure' section")
    table = []
    for line in lines[start + 1:]:
        if line.startswith("|"):
            table.append(line)
        elif table:
            break
    if not table:
        raise SystemExit("report's status section contains no table")
    return table


def main() -> int:
    report_path = REPO_ROOT / "reports" / "REPRODUCTION.md"
    readme_path = REPO_ROOT / "README.md"
    table = "\n".join(status_table_lines(report_path.read_text()))
    if table in readme_path.read_text():
        print("README status table matches reports/REPRODUCTION.md")
        return 0
    print(
        "README.md's reproduction-status table does not match the one in\n"
        "reports/REPRODUCTION.md.  After regenerating the report, copy the\n"
        "'## Status by figure' table into README.md's 'Reproduction status'\n"
        "section.  Expected table:\n"
    )
    print(table)
    return 1


if __name__ == "__main__":
    sys.exit(main())
