#!/usr/bin/env python3
"""Regenerate ``reports/REPRODUCTION.md`` — the repo's headline artifact.

A thin wrapper over ``python -m repro.reporting`` that defaults the output
directory to the repository's ``reports/`` (regardless of the working
directory) and covers every figure with a digitized baseline.  On a warm
result cache this is pure post-processing (zero simulations); otherwise
missing points are simulated first, honouring ``REPRO_EXPERIMENT_SCALE``
and ``REPRO_JOBS`` (or the ``--scale`` / ``--jobs`` flags).

Usage::

    python scripts/make_report.py                  # full report
    python scripts/make_report.py --scale 0.1      # smoke scale (CI)
    python scripts/make_report.py --figure fig7    # subset

The committed report should be regenerated at the default scale whenever
a model change lands (the same commits that bump ``MODEL_VERSION``).
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.reporting.cli import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(arg == "--out" or arg.startswith("--out=") for arg in argv):
        argv = ["--out", str(REPO_ROOT / "reports")] + argv
    sys.exit(main(argv))
