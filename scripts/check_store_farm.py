#!/usr/bin/env python3
"""CI check: a lease-based farm fill serves the figure query path warm.

The columnar-store generalisation of ``check_sharded_sweep.py`` — instead
of fixed hash-range shards plus a manual cache merge, two concurrent farm
worker *processes* race over the whole Figure-1 spec through the on-disk
lease queue:

1. launch two ``python -m repro.store.farm`` workers against one shared
   store and wait for both to drain the spec;
2. require the lease protocol did its job: the workers' simulated sets
   are disjoint and their union covers every point exactly once;
3. compact the store and require a single canonical segment holding the
   full sweep;
4. serve the figure and a pivot through ``python -m repro.store.query``
   and require success — the query CLI cannot simulate by construction,
   so a warm answer proves zero re-simulations;
5. regenerate the figure's report section through the reporting layer
   against the same store (``--store``) and require zero simulations.

Honours ``REPRO_EXPERIMENT_SCALE`` / ``REPRO_JOBS``; CI runs it at scale
0.1.  Violations raise (explicitly, not via ``assert``, so ``python -O``
cannot strip the checks) and exit non-zero.

Usage::

    PYTHONPATH=src REPRO_EXPERIMENT_SCALE=0.1 python scripts/check_store_farm.py
    # keep the filled store (e.g. for a CI artifact):
    ... python scripts/check_store_farm.py --store-dir farm-store
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.fig1_scaling import figure1_spec  # noqa: E402
from repro.reporting.cli import CountingExecutor, generate  # noqa: E402
from repro.experiments.engine import ResultCache  # noqa: E402
from repro.store.columnar import ColumnarStore  # noqa: E402

WORKERS = 2
FIGURE = "fig1"


class CheckFailure(Exception):
    """A farm/store invariant was violated."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise CheckFailure(message)


def run_farm_workers(store_dir: Path, summaries_dir: Path) -> list:
    """Launch the worker processes concurrently and return their stats."""
    procs = []
    for index in range(WORKERS):
        summary = summaries_dir / f"worker{index}.json"
        procs.append(
            (
                summary,
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro.store.farm",
                        "--figure", FIGURE,
                        "--store", str(store_dir),
                        "--worker-id", f"w{index}",
                        "--flush", "2",
                        "--summary", str(summary),
                    ],
                ),
            )
        )
    stats = []
    for summary, proc in procs:
        check(proc.wait() == 0, f"farm worker exited with {proc.returncode}")
        stats.append(json.loads(summary.read_text()))
    return stats


def run_query(store_dir: Path, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.store.query", "--store", str(store_dir), *args],
        capture_output=True,
        text=True,
    )
    check(
        result.returncode == 0,
        f"query {' '.join(args)} exited with {result.returncode}: {result.stderr}",
    )
    return result.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store-dir",
        default=None,
        help="fill this store directory (kept afterwards) instead of a temp dir",
    )
    args = parser.parse_args()

    spec = figure1_spec()
    all_hashes = {sp.content_hash() for sp in spec.expand()}
    print(f"Figure 1 spec: {len(all_hashes)} points, {WORKERS} farm workers")

    with tempfile.TemporaryDirectory(prefix="repro-farm-check-") as tmp:
        tmp = Path(tmp)
        store_dir = Path(args.store_dir) if args.store_dir else tmp / "store"

        worker_stats = run_farm_workers(store_dir, tmp)
        simulated = []
        for stats in worker_stats:
            print(
                f"  worker {stats['worker_id']}: {stats['simulated']} simulated, "
                f"{stats['already_stored']} already stored, "
                f"{stats['lease_lost']} leased elsewhere"
            )
            simulated.append(set(stats["simulated_hashes"]))

        union = set().union(*simulated)
        overlap = set.intersection(*simulated)
        check(not overlap, f"{len(overlap)} point(s) were simulated by both workers")
        check(
            union == all_hashes,
            f"workers covered {len(union)} of {len(all_hashes)} points",
        )

        store = ColumnarStore(store_dir)
        compact_stats = store.compact()
        print(f"  compacted: {compact_stats.summary()}")
        check(
            len(store.segment_paths()) == 1,
            f"compaction left {len(store.segment_paths())} segments, expected 1",
        )
        check(
            set(store.hashes()) == all_hashes,
            "compacted store does not hold exactly the sweep's points",
        )

        figure_text = run_query(store_dir, "figure", FIGURE)
        check(
            "0 simulations" in figure_text,
            "query CLI did not confirm a purely warm serve",
        )
        pivot_text = run_query(
            store_dir,
            "pivot", FIGURE,
            "--index", "num_cores",
            "--columns", "topology",
            "--metric", "per_core_ipc",
        )
        check(bool(json.loads(pivot_text)), "pivot over the warm store is empty")
        print("  query CLI served figure + pivot from the warm store")

        outcome = generate(
            figures=[FIGURE],
            out_dir=str(tmp / "report"),
            executor=CountingExecutor(
                jobs=1, cache=ResultCache(store_dir, backend="columnar")
            ),
        )
        stats = outcome["stats"]
        print(
            f"  report regeneration: {stats.cache_hits} hits, "
            f"{stats.simulations_run} simulated"
        )
        check(
            stats.simulations_run == 0 and stats.cache_misses == 0,
            "report regeneration against the farm-filled store re-simulated "
            f"{stats.simulations_run} point(s) ({stats.cache_misses} misses)",
        )

    print("OK: 2-worker farm fill + compact serves the figure with zero re-simulations")
    return 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except CheckFailure as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        raise SystemExit(1)
