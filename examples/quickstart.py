#!/usr/bin/env python3
"""Quickstart: build a NOC-Out chip, run a workload, inspect the results.

This example builds the paper's proposed 64-core NOC-Out organization,
runs the Web Search workload for a short measurement window and prints the
headline statistics (throughput, network latency, LLC behaviour).

This is the lowest-level way to run one simulation.  For anything shaped
like a sweep — several workloads, fabrics or core counts — declare a
``SweepSpec`` and use ``run_sweep`` instead (see ``README.md`` and
``examples/scaling_study.py``): you get parallelism, caching and tidy
result records for free.

Run with::

    python examples/quickstart.py
"""

from repro import build_chip, presets
from repro.reporting.tables import ReportTable


def main() -> None:
    # 1. Pick a chip configuration (Table 1) and a workload preset.
    config = presets.nocout_system().with_workload(presets.workload("Web Search"))

    # 2. Build the chip: cores, L1s, NUCA LLC + directory, NoC and DRAM.
    chip = build_chip(config)

    # 3. Warm the caches, run a timed window, and collect measurements.
    results = chip.run_experiment(
        warmup_references=2500,
        detailed_warmup_cycles=1000,
        measure_cycles=5000,
    )

    # 4. Inspect the results.
    table = ReportTable(["Metric", "Value"], title="NOC-Out running Web Search")
    table.add_row("Topology", results.topology)
    table.add_row("Active cores", results.active_cores)
    table.add_row("Measured cycles", results.cycles)
    table.add_row("Committed instructions", results.total_instructions)
    table.add_row("System throughput (IPC)", results.throughput_ipc)
    table.add_row("Per-core IPC", results.per_core_ipc)
    table.add_row("Mean NoC latency (cycles)", results.network_mean_latency)
    table.add_row("Mean NoC hops", results.network_mean_hops)
    table.add_row("LLC accesses", results.llc_accesses)
    table.add_row("LLC hit rate", results.llc_hit_rate)
    table.add_row("Snoop-triggering LLC accesses", f"{100 * results.snoop_rate:.2f}%")
    table.add_row("L1-I MPKI", results.l1i_mpki)
    table.add_row("Memory reads", results.memory_reads)
    print(table.render())


if __name__ == "__main__":
    main()
