#!/usr/bin/env python3
"""Compare the mesh, flattened butterfly and NOC-Out on one workload.

This is a miniature version of Figure 7: it runs the same workload on the
three evaluated chip organizations, normalises throughput to the mesh and
also reports the NoC area of each design (Figure 8) so the
performance/area trade-off the paper argues for is visible in one table.

The three runs go through the experiment engine (``run_topology_sweep``),
so they execute in parallel on a multi-core machine and are served from the
on-disk result cache on a re-run (see docs/experiments.md).

Run with::

    python examples/topology_comparison.py [workload-name]
"""

import sys

from repro import NocAreaModel, presets
from repro.analysis.report import ReportTable
from repro.config.noc import Topology
from repro.experiments import RunSettings, run_topology_sweep

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)
SETTINGS = RunSettings(
    warmup_references=2500, detailed_warmup_cycles=1000, measure_cycles=5000
)


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "Data Serving"
    area_model = NocAreaModel()
    results = run_topology_sweep([workload_name], TOPOLOGIES, settings=SETTINGS)

    mesh_ipc = results[(workload_name, Topology.MESH)].throughput_ipc
    table = ReportTable(
        ["Organization", "IPC", "vs. mesh", "NoC latency", "NoC area (mm2)"],
        title=f"Topology comparison on {workload_name} (64-core CMP)",
    )
    for topology in TOPOLOGIES:
        result = results[(workload_name, topology)]
        config = presets.baseline_system(topology).with_workload(
            presets.workload(workload_name)
        )
        table.add_row(
            topology.value,
            result.throughput_ipc,
            result.throughput_ipc / mesh_ipc if mesh_ipc else 0.0,
            result.network_mean_latency,
            area_model.total_area_mm2(config),
        )
    print(table.render())
    print()
    print(
        "The paper's claim: NOC-Out matches the flattened butterfly's performance "
        "at roughly the area cost of the much slower mesh."
    )


if __name__ == "__main__":
    main()
