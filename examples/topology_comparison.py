#!/usr/bin/env python3
"""Compare the mesh, flattened butterfly and NOC-Out on one workload.

This is a miniature version of Figure 7: it runs the same workload on the
three evaluated chip organizations, normalises throughput to the mesh and
also reports the NoC area of each design (Figure 8) so the
performance/area trade-off the paper argues for is visible in one table.

The study is one ``SweepSpec`` over the topology axis, executed with
``run_sweep``: the three runs execute in parallel on a multi-core machine
and are served from the on-disk result cache on a re-run (see
docs/experiments.md).

Run with::

    python examples/topology_comparison.py [workload-name]
"""

import sys

from repro import NocAreaModel, SweepSpec, run_sweep
from repro.reporting.tables import ReportTable
from repro.experiments import RunSettings
from repro.scenarios import build_system, workload

TOPOLOGY_NAMES = ("mesh", "flattened_butterfly", "noc_out")
SETTINGS = RunSettings(
    warmup_references=2500, detailed_warmup_cycles=1000, measure_cycles=5000
)


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "Data Serving"
    area_model = NocAreaModel()
    spec = SweepSpec(
        axes={"topology": TOPOLOGY_NAMES},
        settings=SETTINGS,
        fixed={"workload": workload_name},
    )
    results = run_sweep(spec)

    mesh_ipc = results.value("throughput_ipc", topology="mesh")
    table = ReportTable(
        ["Organization", "IPC", "vs. mesh", "NoC latency", "NoC area (mm2)"],
        title=f"Topology comparison on {workload_name} (64-core CMP)",
    )
    for name in TOPOLOGY_NAMES:
        record = results.filter(topology=name)[0]
        config = build_system(name).with_workload(workload(workload_name))
        table.add_row(
            name,
            record.metric("throughput_ipc"),
            record.metric("throughput_ipc") / mesh_ipc if mesh_ipc else 0.0,
            record.metric("network_mean_latency"),
            area_model.total_area_mm2(config),
        )
    print(table.render())
    print()
    print(
        "The paper's claim: NOC-Out matches the flattened butterfly's performance "
        "at roughly the area cost of the much slower mesh."
    )


if __name__ == "__main__":
    main()
