#!/usr/bin/env python3
"""Compare the mesh, flattened butterfly and NOC-Out on one workload.

This is a miniature version of Figure 7: it runs the same workload on the
three evaluated chip organizations, normalises throughput to the mesh and
also reports the NoC area of each design (Figure 8) so the
performance/area trade-off the paper argues for is visible in one table.

Run with::

    python examples/topology_comparison.py [workload-name]
"""

import sys

from repro import NocAreaModel, build_chip, presets
from repro.analysis.report import ReportTable
from repro.config.noc import Topology


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "Data Serving"
    workload = presets.workload(workload_name)
    area_model = NocAreaModel()

    rows = []
    mesh_ipc = None
    for topology in (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT):
        config = presets.baseline_system(topology).with_workload(workload)
        chip = build_chip(config)
        results = chip.run_experiment(
            warmup_references=2500, detailed_warmup_cycles=1000, measure_cycles=5000
        )
        if mesh_ipc is None:
            mesh_ipc = results.throughput_ipc
        rows.append(
            (
                topology.value,
                results.throughput_ipc,
                results.throughput_ipc / mesh_ipc,
                results.network_mean_latency,
                area_model.total_area_mm2(config),
            )
        )

    table = ReportTable(
        ["Organization", "IPC", "vs. mesh", "NoC latency", "NoC area (mm2)"],
        title=f"Topology comparison on {workload_name} (64-core CMP)",
    )
    for row in rows:
        table.add_row(*row)
    print(table.render())
    print()
    print(
        "The paper's claim: NOC-Out matches the flattened butterfly's performance "
        "at roughly the area cost of the much slower mesh."
    )


if __name__ == "__main__":
    main()
