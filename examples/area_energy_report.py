#!/usr/bin/env python3
"""Area and energy report for the three NoC organizations.

Regenerates Figure 8 (area breakdown) from the static topology descriptors
and Section 6.4 (NoC power) from the switching activity of a short Data
Serving run on each organization.  The power sweep is one ``SweepSpec``
over the topology axis; the energy model reads each record's full
``SimulationResults`` (``record.result.network_activity``).

Run with::

    python examples/area_energy_report.py
"""

from repro import NocAreaModel, NocEnergyModel, SweepSpec, run_sweep
from repro.reporting.tables import ReportTable
from repro.experiments import RunSettings
from repro.scenarios import build_system

TOPOLOGY_NAMES = ("mesh", "flattened_butterfly", "noc_out")


def area_report() -> ReportTable:
    model = NocAreaModel()
    table = ReportTable(
        ["Organization", "Links", "Buffers", "Crossbars", "Total (mm2)"],
        title="Figure 8: NoC area breakdown",
    )
    for name in TOPOLOGY_NAMES:
        breakdown = model.breakdown(build_system(name))
        table.add_row(
            name,
            breakdown.links_mm2,
            breakdown.buffers_mm2,
            breakdown.crossbars_mm2,
            breakdown.total_mm2,
        )
    return table


def power_report() -> ReportTable:
    energy_model = NocEnergyModel()
    table = ReportTable(
        ["Organization", "NoC power (W)", "Link share"],
        title="Section 6.4: NoC power on Data Serving",
    )
    spec = SweepSpec(
        axes={"topology": TOPOLOGY_NAMES},
        settings=RunSettings(
            warmup_references=2000, detailed_warmup_cycles=800, measure_cycles=4000
        ),
        fixed={"workload": "Data Serving"},
    )
    # One engine batch: cached across invocations, parallel across topologies.
    results = run_sweep(spec)
    for name in TOPOLOGY_NAMES:
        record = results.filter(topology=name)[0]
        report = energy_model.report(record.result.network_activity, record.result.cycles)
        link_share = report.link_energy_j / report.total_energy_j if report.total_energy_j else 0.0
        table.add_row(name, report.total_power_w, f"{100 * link_share:.0f}%")
    return table


def main() -> None:
    print(area_report().render())
    print()
    print(power_report().render())


if __name__ == "__main__":
    main()
