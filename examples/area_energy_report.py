#!/usr/bin/env python3
"""Area and energy report for the three NoC organizations.

Regenerates Figure 8 (area breakdown) from the static topology descriptors
and Section 6.4 (NoC power) from the switching activity of a short Data
Serving run on each organization.

Run with::

    python examples/area_energy_report.py
"""

from repro import NocAreaModel, NocEnergyModel, presets
from repro.analysis.report import ReportTable
from repro.config.noc import Topology
from repro.experiments import RunSettings, run_topology_sweep

TOPOLOGIES = (Topology.MESH, Topology.FLATTENED_BUTTERFLY, Topology.NOC_OUT)


def area_report() -> ReportTable:
    model = NocAreaModel()
    table = ReportTable(
        ["Organization", "Links", "Buffers", "Crossbars", "Total (mm2)"],
        title="Figure 8: NoC area breakdown",
    )
    for topology in TOPOLOGIES:
        breakdown = model.breakdown(presets.baseline_system(topology))
        table.add_row(
            topology.value,
            breakdown.links_mm2,
            breakdown.buffers_mm2,
            breakdown.crossbars_mm2,
            breakdown.total_mm2,
        )
    return table


def power_report() -> ReportTable:
    energy_model = NocEnergyModel()
    workload = presets.workload("Data Serving")
    table = ReportTable(
        ["Organization", "NoC power (W)", "Link share"],
        title="Section 6.4: NoC power on Data Serving",
    )
    settings = RunSettings(
        warmup_references=2000, detailed_warmup_cycles=800, measure_cycles=4000
    )
    # One engine batch: cached across invocations, parallel across topologies.
    sweep = run_topology_sweep([workload.name], TOPOLOGIES, settings=settings)
    for topology in TOPOLOGIES:
        results = sweep[(workload.name, topology)]
        report = energy_model.report(results.network_activity, results.cycles)
        link_share = report.link_energy_j / report.total_energy_j if report.total_energy_j else 0.0
        table.add_row(topology.value, report.total_power_w, f"{100 * link_share:.0f}%")
    return table


def main() -> None:
    print(area_report().render())
    print()
    print(power_report().render())


if __name__ == "__main__":
    main()
