#!/usr/bin/env python3
"""Core-count scaling study (a miniature Figure 1), rendered incrementally.

Shows how per-core performance degrades as the chip grows from 1 to 64
cores when the interconnect is an ideal (wire-only) fabric versus a mesh,
using the Data Serving workload.  The growing gap is the motivation for
NOC-Out's delay-optimised organization.

The whole study is one declarative ``SweepSpec`` (fabric x core count).
Instead of waiting on the batch barrier, the script streams records with
``iter_results``: cached points print immediately and fresh simulations
print the moment their worker process finishes (``REPRO_JOBS`` workers),
so you watch the sweep fill in.  A re-run is served entirely from the
on-disk cache (see docs/experiments.md).

Run with::

    python examples/scaling_study.py
"""

from repro import SweepSpec, iter_results
from repro.reporting.tables import ReportTable
from repro.experiments import RunSettings

CORE_COUNTS = (1, 4, 16, 64)
SETTINGS = RunSettings(
    warmup_references=2000, detailed_warmup_cycles=800, measure_cycles=4000
)

SPEC = SweepSpec(
    axes={"topology": ("ideal", "mesh"), "num_cores": CORE_COUNTS},
    settings=SETTINGS,
    fixed={"workload": "Data Serving"},
)


def main() -> None:
    per_core = {}
    total = SPEC.size()
    for done, record in enumerate(iter_results(SPEC), start=1):
        key = (record.coords["topology"], record.coords["num_cores"])
        per_core[key] = record.metric("per_core_ipc")
        print(
            f"[{done}/{total}] {record.coords['topology']:>5} @ "
            f"{record.coords['num_cores']:>2} cores: "
            f"per-core IPC {per_core[key]:.4f}"
        )

    table = ReportTable(
        ["Cores", "Ideal per-core perf", "Mesh per-core perf", "Mesh / Ideal"],
        title="Per-core performance vs. core count (Data Serving, normalised to 1 core)",
    )
    ideal_base = per_core[("ideal", CORE_COUNTS[0])]
    mesh_base = per_core[("mesh", CORE_COUNTS[0])]
    for count in CORE_COUNTS:
        ideal = per_core[("ideal", count)] / ideal_base
        mesh = per_core[("mesh", count)] / mesh_base
        table.add_row(count, ideal, mesh, mesh / ideal)
    print()
    print(table.render())
    print()
    print(
        "The mesh's growing hop count erodes per-core performance as the chip "
        "scales; the ideal fabric only pays wire delay (Figure 1 of the paper)."
    )


if __name__ == "__main__":
    main()
