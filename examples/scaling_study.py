#!/usr/bin/env python3
"""Core-count scaling study (a miniature Figure 1).

Shows how per-core performance degrades as the chip grows from 1 to 64
cores when the interconnect is an ideal (wire-only) fabric versus a mesh,
using the Data Serving workload.  The growing gap is the motivation for
NOC-Out's delay-optimised organization.

All eight (fabric, core count) points are described up front and handed to
the experiment engine in one batch: uncached points fan out over
``REPRO_JOBS`` worker processes and finished points are cached on disk, so
a re-run of this script is free (see docs/experiments.md).

Run with::

    python examples/scaling_study.py
"""

from repro import presets
from repro.analysis.report import ReportTable
from repro.config.noc import Topology
from repro.experiments import RunSettings, point_for, run_experiments

CORE_COUNTS = (1, 4, 16, 64)
SETTINGS = RunSettings(
    warmup_references=2000, detailed_warmup_cycles=800, measure_cycles=4000
)


def main() -> None:
    workload = presets.workload("Data Serving")
    keys = [
        (topology, count)
        for topology in (Topology.IDEAL, Topology.MESH)
        for count in CORE_COUNTS
    ]
    points = [
        point_for(topology, workload, num_cores=count, settings=SETTINGS)
        for topology, count in keys
    ]
    per_core = {
        key: result.per_core_ipc for key, result in zip(keys, run_experiments(points))
    }

    table = ReportTable(
        ["Cores", "Ideal per-core perf", "Mesh per-core perf", "Mesh / Ideal"],
        title="Per-core performance vs. core count (Data Serving, normalised to 1 core)",
    )
    ideal_base = per_core[(Topology.IDEAL, CORE_COUNTS[0])]
    mesh_base = per_core[(Topology.MESH, CORE_COUNTS[0])]
    for count in CORE_COUNTS:
        ideal = per_core[(Topology.IDEAL, count)] / ideal_base
        mesh = per_core[(Topology.MESH, count)] / mesh_base
        table.add_row(count, ideal, mesh, mesh / ideal)
    print(table.render())
    print()
    print(
        "The mesh's growing hop count erodes per-core performance as the chip "
        "scales; the ideal fabric only pays wire delay (Figure 1 of the paper)."
    )


if __name__ == "__main__":
    main()
