#!/usr/bin/env python3
"""Core-count scaling study (a miniature Figure 1).

Shows how per-core performance degrades as the chip grows from 1 to 64
cores when the interconnect is an ideal (wire-only) fabric versus a mesh,
using the Data Serving workload.  The growing gap is the motivation for
NOC-Out's delay-optimised organization.

Run with::

    python examples/scaling_study.py
"""

from repro import build_chip, presets
from repro.analysis.report import ReportTable
from repro.config.noc import Topology

CORE_COUNTS = (1, 4, 16, 64)


def per_core_ipc(topology: Topology, num_cores: int) -> float:
    workload = presets.workload("Data Serving")
    config = presets.baseline_system(topology, num_cores=num_cores).with_workload(workload)
    chip = build_chip(config)
    results = chip.run_experiment(
        warmup_references=2000, detailed_warmup_cycles=800, measure_cycles=4000
    )
    return results.per_core_ipc


def main() -> None:
    table = ReportTable(
        ["Cores", "Ideal per-core perf", "Mesh per-core perf", "Mesh / Ideal"],
        title="Per-core performance vs. core count (Data Serving, normalised to 1 core)",
    )
    ideal_base = mesh_base = None
    for count in CORE_COUNTS:
        ideal = per_core_ipc(Topology.IDEAL, count)
        mesh = per_core_ipc(Topology.MESH, count)
        ideal_base = ideal_base or ideal
        mesh_base = mesh_base or mesh
        table.add_row(
            count,
            ideal / ideal_base,
            mesh / mesh_base,
            (mesh / mesh_base) / (ideal / ideal_base),
        )
    print(table.render())
    print()
    print(
        "The mesh's growing hop count erodes per-core performance as the chip "
        "scales; the ideal fabric only pays wire delay (Figure 1 of the paper)."
    )


if __name__ == "__main__":
    main()
